(* Tests for the robustness layer: typed simulation errors and their exit
   codes, the timing-model watchdog and budgets, the emulator's strict
   barrier-deadlock reporting, the fault injector, the differential
   oracle, and crash-isolated suite checking. *)

open Darsie_isa
open Darsie_timing
module W = Darsie_workloads.Workload
module Interp = Darsie_emu.Interp
module Memory = Darsie_emu.Memory
module Sim_error = Darsie_check.Sim_error
module Injector = Darsie_check.Injector
module Oracle = Darsie_check.Oracle
module Checker = Darsie_harness.Checker
module Obs = Darsie_obs

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Parser.parse_kernel

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Sim_error: exit codes, kinds, summaries                             *)
(* ------------------------------------------------------------------ *)

let sample_errors =
  [
    Sim_error.Invariant_violation { message = "sum off" };
    Sim_error.Deadlock
      { message = "stuck"; diag = Sim_error.empty_diagnostic };
    Sim_error.Cycle_bound
      { bound = 10; message = "over"; diag = Sim_error.empty_diagnostic };
    Sim_error.Wall_timeout { budget_s = 1.0; cycle = 42; message = "slow" };
    Sim_error.Memory_fault { message = "oob" };
    Sim_error.Oracle_mismatch
      { app = "MM"; machine = "DARSIE"; mismatches = 3; message = "diverged" };
  ]

let test_exit_codes () =
  let codes = List.map Sim_error.exit_code sample_errors in
  Alcotest.(check (list int)) "documented codes" [ 2; 3; 4; 5; 6; 7 ] codes;
  check_int "codes distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  let kinds = List.map Sim_error.kind_name sample_errors in
  check_int "kinds distinct" (List.length kinds)
    (List.length (List.sort_uniq compare kinds));
  List.iter
    (fun e ->
      let s = Sim_error.summary e in
      check_bool "summary single line" false (String.contains s '\n');
      check_bool "summary names the kind" true
        (contains ~sub:(Sim_error.kind_name e) s))
    sample_errors

(* ------------------------------------------------------------------ *)
(* Timing-model watchdog and budgets                                   *)
(* ------------------------------------------------------------------ *)

(* An engine that never lets any warp fetch: the pipeline makes no
   progress from cycle 0, which only the watchdog can catch. *)
let stuck_factory ki cfg stats =
  let e = Engine.base_factory ki cfg stats in
  { e with Engine.can_fetch = (fun _ -> false) }

let alu_kernel =
  {|
.kernel alu
  mov.u32 %r0, %tid.x;
  add.u32 %r1, %r0, 1;
  add.u32 %r2, %r1, 2;
  exit;
|}

let small_trace () =
  let k = parse alu_kernel in
  let mem = Memory.create () in
  let launch = Kernel.launch k ~grid:(Kernel.dim3 2) ~block:(Kernel.dim3 64)
      ~params:[||] in
  let kinfo = Kinfo.make ~warp_size:32 launch in
  (kinfo, Darsie_trace.Record.generate mem launch)

let test_watchdog_deadlock () =
  let kinfo, trace = small_trace () in
  let cfg = { Config.default with Config.watchdog_cycles = 200 } in
  match Gpu.run ~cfg stuck_factory kinfo trace with
  | Ok _ -> Alcotest.fail "stuck engine should deadlock"
  | Error (Sim_error.Deadlock { diag; _ }) ->
    check_bool "fires shortly after the window" true (diag.Sim_error.d_cycle < 1000);
    check_bool "warp snapshots present" true (diag.Sim_error.d_warps <> []);
    check_bool "a warp is fetch-gated" true
      (List.exists
         (fun w -> w.Sim_error.ws_state = "fetch_gated")
         diag.Sim_error.d_warps);
    check_bool "attribution captured" true (diag.Sim_error.d_attribution <> [])
  | Error e -> Alcotest.failf "expected deadlock, got %s" (Sim_error.kind_name e)

let test_cycle_bound () =
  let kinfo, trace = small_trace () in
  let cfg =
    { Config.default with Config.watchdog_cycles = 0; max_cycles = 300 }
  in
  match Gpu.run ~cfg stuck_factory kinfo trace with
  | Error (Sim_error.Cycle_bound { bound; _ }) -> check_int "bound" 300 bound
  | Ok _ -> Alcotest.fail "should hit the cycle bound"
  | Error e ->
    Alcotest.failf "expected cycle_bound, got %s" (Sim_error.kind_name e)

let test_wall_timeout () =
  let kinfo, trace = small_trace () in
  let cfg = { Config.default with Config.watchdog_cycles = 0 } in
  (* a pre-expired budget trips at the first wall-clock check *)
  match Gpu.run ~cfg ~deadline:(-1.0) stuck_factory kinfo trace with
  | Error (Sim_error.Wall_timeout { cycle; _ }) ->
    check_bool "reports the failing cycle" true (cycle > 0)
  | Ok _ -> Alcotest.fail "should time out"
  | Error e ->
    Alcotest.failf "expected wall_timeout, got %s" (Sim_error.kind_name e)

let test_clean_run_still_ok () =
  let kinfo, trace = small_trace () in
  let cfg = { Config.default with Config.watchdog_cycles = 50 } in
  match Gpu.run ~cfg Engine.base_factory kinfo trace with
  | Ok r -> check_bool "finishes" true (r.Gpu.cycles > 0)
  | Error e -> Alcotest.failf "clean run failed: %s" (Sim_error.summary e)

(* ------------------------------------------------------------------ *)
(* Emulator barrier-deadlock reporting                                 *)
(* ------------------------------------------------------------------ *)

let test_strict_barrier_deadlock () =
  (* warp 0 exits early; warp 1 waits at the barrier forever *)
  let k =
    parse
      {|
.kernel split
  setp.lt.s32 %p0, %tid.x, 32;
@%p0 bra out;
  bar.sync;
out:
  exit;
|}
  in
  let mem = Memory.create () in
  let launch =
    Kernel.launch k ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 64) ~params:[||]
  in
  match Interp.run_result ~strict_barriers:true mem launch with
  | Ok _ -> Alcotest.fail "strict barriers should deadlock"
  | Error (Interp.Barrier_deadlock { tb; warps } as err) ->
    check_int "tb 0" 0 tb;
    check_int "both warps reported" 2 (List.length warps);
    let parked =
      List.filter (fun w -> w.Interp.park_state = Interp.At_barrier) warps
    in
    let exited =
      List.filter (fun w -> w.Interp.park_state = Interp.Exited) warps
    in
    check_int "one warp parked" 1 (List.length parked);
    check_int "one warp exited" 1 (List.length exited);
    let p = List.hd parked in
    check_int "parked warp is warp 1" 1 p.Interp.park_warp;
    check_bool "parked at the barrier pc" true (p.Interp.park_barrier_pc >= 0);
    (match Sim_error.of_emu err with
    | Sim_error.Deadlock { message; _ } ->
      check_bool "message names the parked warp" true
        (contains ~sub:"warp 1" message)
    | e -> Alcotest.failf "of_emu: expected deadlock, got %s"
             (Sim_error.kind_name e))
  | Error e -> Alcotest.failf "expected barrier deadlock, got %s"
                 (Interp.error_message e)

let test_permissive_barrier_releases () =
  let k =
    parse
      {|
.kernel split
  setp.lt.s32 %p0, %tid.x, 32;
@%p0 bra out;
  bar.sync;
out:
  exit;
|}
  in
  let mem = Memory.create () in
  let launch =
    Kernel.launch k ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 64) ~params:[||]
  in
  match Interp.run_result mem launch with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "permissive run failed: %s" (Interp.error_message e)

(* ------------------------------------------------------------------ *)
(* Skip-table invariants                                               *)
(* ------------------------------------------------------------------ *)

let test_skip_table_invariants () =
  let module St = Darsie_core.Skip_table in
  let t = St.create ~max_entries:8 ~rename_regs:32 in
  let ok label = function
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: %s" label msg
  in
  ok "fresh table" (St.check_invariants t);
  St.allocate t ~pc:3 ~occ:0 ~leader:0 ~mem_dep:false;
  St.allocate t ~pc:3 ~occ:1 ~leader:1 ~mem_dep:true;
  St.allocate t ~pc:7 ~occ:0 ~leader:2 ~mem_dep:false;
  ok "after allocation" (St.check_invariants t);
  St.mark_writeback t ~pc:3 ~occ:0 ~majority:0b1111;
  St.mark_passed t ~pc:3 ~occ:0 ~warp:1 ~majority:0b1111;
  ok "after partial passes" (St.check_invariants t);
  St.flush_loads t ~kind:`Store;
  ok "after load flush" (St.check_invariants t)

(* ------------------------------------------------------------------ *)
(* Injector planning                                                   *)
(* ------------------------------------------------------------------ *)

let test_injector_plan () =
  let site i = { Injector.s_tb = 0; s_warp = i; s_inst = 1; s_occ = 0 } in
  let cands =
    {
      Injector.flip_sites = List.init 4 site;
      poison_sites = List.init 5 (fun i -> site (10 + i));
      skip_sites = List.init 3 (fun i -> site (20 + i));
    }
  in
  check_int "total" 12 (Injector.total cands);
  let p1 = Injector.plan ~seed:42 ~count:6 cands in
  let p2 = Injector.plan ~seed:42 ~count:6 cands in
  check_bool "same seed, same plan" true (p1 = p2);
  check_int "asked count honoured" 6 (List.length p1);
  check_bool "round-robin covers every kind" true
    (List.for_all
       (fun k -> List.exists (fun f -> f.Injector.kind = k) p1)
       Injector.all_kinds);
  let keys = List.map (fun f -> (f.Injector.kind, f.Injector.site)) p1 in
  check_int "no site reused per kind" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  check_int "exhausts candidates gracefully" 12
    (List.length (Injector.plan ~seed:1 ~count:100 cands));
  check_int "no candidates, no faults" 0
    (List.length
       (Injector.plan ~seed:1 ~count:5
          { Injector.flip_sites = []; poison_sites = []; skip_sites = [] }))

(* ------------------------------------------------------------------ *)
(* Differential oracle                                                 *)
(* ------------------------------------------------------------------ *)

let test_oracle_clean_suite () =
  List.iter
    (fun (w : W.t) ->
      let r = Oracle.check w in
      if not (Oracle.passed r) then
        Alcotest.failf "%s: clean oracle found %d mismatches (first: %s)"
          w.W.abbr
          (List.length r.Oracle.mismatches)
          (Oracle.mismatch_line (List.hd r.Oracle.mismatches));
      check_bool
        (w.W.abbr ^ " exercises forwarding")
        true (r.Oracle.forwards > 0))
    Darsie_workloads.Registry.all

let test_oracle_detects_every_kind () =
  (* LIB's loop-carried redundancy gives candidates for all three kinds *)
  let w =
    match Darsie_workloads.Registry.find "LIB" with
    | Some w -> w
    | None -> Alcotest.fail "LIB missing from registry"
  in
  let cands = Oracle.candidates w in
  check_bool "flip candidates" true (cands.Injector.flip_sites <> []);
  check_bool "poison candidates" true (cands.Injector.poison_sites <> []);
  check_bool "skip candidates" true (cands.Injector.skip_sites <> []);
  let faults = Injector.plan ~seed:7 ~count:6 cands in
  check_bool "plan covers every kind" true
    (List.for_all
       (fun k -> List.exists (fun f -> f.Injector.kind = k) faults)
       Injector.all_kinds);
  List.iter
    (fun fault ->
      let r = Oracle.check_fault w fault in
      if Oracle.passed r then
        Alcotest.failf "fault escaped the oracle: %s" (Injector.fault_line fault);
      match Oracle.to_error r with
      | Some (Sim_error.Oracle_mismatch { mismatches; _ }) ->
        check_bool "mismatch count positive" true (mismatches > 0)
      | _ -> Alcotest.fail "faulted report should map to Oracle_mismatch")
    faults

(* ------------------------------------------------------------------ *)
(* Crash-isolated suite checking                                       *)
(* ------------------------------------------------------------------ *)

(* A healthy self-contained workload, cheap enough for unit tests. *)
let good_workload abbr : W.t =
  let kernel =
    parse
      {|
.kernel ok
.params 1
  shl.b32 %r0, %tid.x, 2;
  add.u32 %r1, %r0, %param0;
  mov.u32 %r2, %tid.x;
  st.global.u32 [%r1+0], %r2;
  exit;
|}
  in
  {
    W.abbr;
    full_name = "test workload";
    suite = "test";
    block_dim = (64, 1);
    dimensionality = W.D1;
    prepare =
      (fun ~scale:_ ->
        let mem = Memory.create () in
        let out = Memory.alloc mem 256 in
        {
          W.mem;
          launch =
            Kernel.launch kernel ~grid:(Kernel.dim3 2) ~block:(Kernel.dim3 64)
              ~params:[| out |];
          verify =
            (fun m ->
              W.check_i32 ~name:abbr
                ~expected:(Array.init 64 (fun i -> i))
                (Memory.read_i32s m out 64));
        });
  }

(* Its evil twin: every run dies with a lane-level memory fault. *)
let poisoned_workload : W.t =
  let kernel =
    parse {|
.kernel bad
.shared 16
  st.shared.u32 [4096], 1;
  exit;
|}
  in
  {
    W.abbr = "BAD";
    full_name = "poisoned workload";
    suite = "test";
    block_dim = (32, 1);
    dimensionality = W.D1;
    prepare =
      (fun ~scale:_ ->
        let mem = Memory.create () in
        {
          W.mem;
          launch =
            Kernel.launch kernel ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32)
              ~params:[||];
          verify = (fun _ -> Ok ());
        });
  }

let test_checker_isolation () =
  let apps = [ good_workload "OK1"; poisoned_workload; good_workload "OK2" ] in
  let report = Checker.check_suite ~oracle:false ~apps () in
  check_int "every app reported" 3 (List.length report.Checker.apps);
  let by_abbr a =
    List.find (fun r -> r.Checker.abbr = a) report.Checker.apps
  in
  check_bool "first app unaffected" true (Checker.app_passed (by_abbr "OK1"));
  check_bool "last app still ran" true (Checker.app_passed (by_abbr "OK2"));
  let bad = by_abbr "BAD" in
  check_bool "poisoned app failed" false (Checker.app_passed bad);
  check_bool "captured as memory faults" true
    (List.for_all
       (fun e -> match e with Sim_error.Memory_fault _ -> true | _ -> false)
       bad.Checker.errors);
  check_bool "suite failed overall" false (Checker.passed report);
  (match Checker.worst_error report with
  | Some e -> check_int "exit code is the memory-fault one" 6 (Sim_error.exit_code e)
  | None -> Alcotest.fail "worst_error must exist");
  let rendered = Checker.render report in
  check_bool "render marks the failure" true (contains ~sub:"FAIL BAD" rendered);
  check_bool "render marks the survivors" true (contains ~sub:"ok   OK2" rendered)

let test_checker_full_pass () =
  let apps = [ good_workload "OK1" ] in
  let report = Checker.check_suite ~inject:0 ~apps () in
  check_bool "passes" true (Checker.passed report);
  check_bool "no worst error" true (Checker.worst_error report = None);
  let a = List.hd report.Checker.apps in
  check_int "two machines" 2 (List.length a.Checker.timing);
  List.iter
    (fun (t : Checker.timing_run) ->
      match t.Checker.outcome with
      | Ok c -> check_bool "cycles positive" true (c > 0)
      | Error e -> Alcotest.failf "timing failed: %s" (Sim_error.summary e))
    a.Checker.timing;
  match a.Checker.oracle with
  | Some o -> check_bool "oracle clean" true (Oracle.passed o)
  | None -> Alcotest.fail "oracle should have run"

let test_check_report_json () =
  let apps = [ good_workload "OK1"; poisoned_workload ] in
  let report = Checker.check_suite ~oracle:false ~apps () in
  let doc = Checker.to_json report in
  (match Darsie_harness.Metrics.validate_check doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "report invalid: %s" m);
  (match Darsie_harness.Metrics.validate_check_string (Obs.Json.to_string doc) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "round-trip invalid: %s" m);
  (* tampering with the pass flag must be caught *)
  let tampered =
    match doc with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (function
             | "passed", _ -> ("passed", Obs.Json.Bool true)
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  match Darsie_harness.Metrics.validate_check tampered with
  | Ok () -> Alcotest.fail "tampered report accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Event ring                                                          *)
(* ------------------------------------------------------------------ *)

let test_ring () =
  let ev i =
    { Obs.Event.cycle = i; sm = 0; warp = 0; kind = Obs.Event.Fetch }
  in
  let r = Obs.Ring.create ~cap:4 in
  check_int "empty" 0 (List.length (Obs.Ring.events r));
  for i = 0 to 5 do
    Obs.Ring.add r (ev i)
  done;
  check_int "keeps the last cap" 4 (List.length (Obs.Ring.events r));
  check_int "counts everything" 6 (Obs.Ring.total r);
  Alcotest.(check (list int))
    "oldest first" [ 2; 3; 4; 5 ]
    (List.map (fun e -> e.Obs.Event.cycle) (Obs.Ring.events r));
  Obs.Ring.clear r;
  check_int "cleared" 0 (List.length (Obs.Ring.events r));
  check_int "total reset" 0 (Obs.Ring.total r)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "sim-error",
        [ Alcotest.test_case "exit codes and summaries" `Quick test_exit_codes ] );
      ( "watchdog",
        [
          Alcotest.test_case "deadlock detected" `Quick test_watchdog_deadlock;
          Alcotest.test_case "cycle bound" `Quick test_cycle_bound;
          Alcotest.test_case "wall timeout" `Quick test_wall_timeout;
          Alcotest.test_case "clean run unaffected" `Quick test_clean_run_still_ok;
        ] );
      ( "emu-deadlock",
        [
          Alcotest.test_case "strict barrier deadlock" `Quick
            test_strict_barrier_deadlock;
          Alcotest.test_case "permissive release" `Quick
            test_permissive_barrier_releases;
        ] );
      ( "skip-table",
        [ Alcotest.test_case "invariants" `Quick test_skip_table_invariants ] );
      ( "injector",
        [ Alcotest.test_case "deterministic plan" `Quick test_injector_plan ] );
      ( "oracle",
        [
          Alcotest.test_case "clean on every workload" `Slow
            test_oracle_clean_suite;
          Alcotest.test_case "detects every fault kind" `Slow
            test_oracle_detects_every_kind;
        ] );
      ( "checker",
        [
          Alcotest.test_case "crash isolation" `Quick test_checker_isolation;
          Alcotest.test_case "full pass" `Quick test_checker_full_pass;
          Alcotest.test_case "json report" `Quick test_check_report_json;
        ] );
      ( "ring", [ Alcotest.test_case "bounded events" `Quick test_ring ] );
    ]
