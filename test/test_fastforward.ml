(* Differential and fence tests for event-driven fast-forwarding: the
   timing model must produce byte-identical results with the clock-jump
   path on (the default) and off (--no-fast-forward), including when
   jumps span a DRAM return, a barrier release, a TB-launch boundary or
   a sampling boundary, and the watchdog / cycle-bound error paths must
   fire at exactly the same cycle either way. *)

open Darsie_isa
open Darsie_timing
module Obs = Darsie_obs
module Sim_error = Darsie_check.Sim_error
module W = Darsie_workloads.Workload
module J = Darsie_obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let parse = Parser.parse_kernel

let ff_off cfg = { cfg with Config.fast_forward = false }

(* ------------------------------------------------------------------ *)
(* Crafted-kernel differential harness                                 *)
(* ------------------------------------------------------------------ *)

let prep ?(grid = Kernel.dim3 1) ?(block = Kernel.dim3 32) ktext ~nparams =
  let k = parse ktext in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.init nparams (fun _ ->
        let b = Darsie_emu.Memory.alloc mem 65536 in
        Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
        b)
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  (Kinfo.make ~warp_size:32 launch, Darsie_trace.Record.generate mem launch)

(* Everything a run observably produces, as one canonical byte string:
   cycles, the full stats record, aggregate and per-SM stall attribution,
   per-PC bucket totals and the sampled counter time-series. *)
let result_fingerprint (r : Gpu.result) =
  let assoc a =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         (Obs.Attrib.to_assoc a))
  in
  String.concat "\n"
    ([ Printf.sprintf "cycles=%d" r.Gpu.cycles;
       Format.asprintf "%a" Stats.pp r.Gpu.stats;
       assoc r.Gpu.attribution ]
    @ List.map assoc (Array.to_list r.Gpu.per_sm_attribution)
    @ List.map
        (fun p -> assoc (Obs.Pcstat.bucket_totals p))
        (Array.to_list r.Gpu.per_sm_pcstat)
    @ [ Obs.Export.csv_of_series r.Gpu.series ])

(* Run both ways, demand the attribution invariant holds under bulk
   charging, and return the (identical) pair for scenario assertions. *)
let run_both ?(cfg = Config.default) ?(engine = Engine.base_factory)
    ?sample_interval (kinfo, trace) =
  let go cfg =
    let r = Gpu.run_exn ~cfg ?sample_interval ~pcstat:true engine kinfo trace in
    (match Gpu.check_attribution r with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "attribution invariant: %s" msg);
    r
  in
  let on = go cfg in
  let off = go (ff_off cfg) in
  check_string "fast-forward on/off fingerprints"
    (result_fingerprint off) (result_fingerprint on);
  (on, off)

(* A single dependent load: the SM idles for the whole DRAM round trip
   with nothing else runnable, so the jump must land exactly on the
   writeback cycle (and the three idle SMs exercise lazy catch-up). *)
let dram_kernel =
  {|
.kernel dram
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  add.u32 %r3, %r2, 1;
  exit;
|}

let test_dram_return () =
  let on, _ = run_both (prep dram_kernel ~nparams:1) in
  let mem_pending =
    List.assoc "mem_pending" (Obs.Attrib.to_assoc on.Gpu.attribution)
  in
  check_bool "scenario has a DRAM-bound span to jump" true
    (mem_pending > Config.default.Config.l1_lat)

let barrier_kernel =
  {|
.kernel barr
  mov.u32 %r0, %tid.x;
  bar.sync;
  add.u32 %r1, %r0, 1;
  exit;
|}

let test_barrier_release () =
  (* 4 warps per TB: once all arrive, the only pending event is the
     barrier-release timer (barrier_lat cycles out) *)
  let on, _ =
    run_both (prep ~grid:(Kernel.dim3 2) ~block:(Kernel.dim3 128)
                barrier_kernel ~nparams:0)
  in
  check_bool "scenario has barrier stalls to jump" true
    (on.Gpu.stats.Stats.barrier_stall_cycles > 0)

let test_tb_launch_boundary () =
  (* many more TBs than slots: retirement frees a slot mid-stall and the
     next TB must launch at exactly the stepped-mode cycle *)
  let on, _ =
    run_both (prep ~grid:(Kernel.dim3 64) dram_kernel ~nparams:1)
  in
  check_bool "TB turnover happened" true (on.Gpu.cycles > 200)

let test_sampling_boundary () =
  (* interval far below the DRAM latency: jumps would cross sampling
     boundaries unless the wake computation fences on them *)
  ignore
    (run_both ~sample_interval:16
       (prep ~grid:(Kernel.dim3 8) dram_kernel ~nparams:1))

(* ------------------------------------------------------------------ *)
(* Error paths: same failure at the same cycle, on or off              *)
(* ------------------------------------------------------------------ *)

(* An engine that never lets any warp fetch: no wake-up event ever
   arrives, so fast-forward must keep stepping and leave the deadlock to
   the watchdog. *)
let stuck_factory ki cfg stats =
  let e = Engine.base_factory ki cfg stats in
  { e with Engine.can_fetch = (fun _ -> false) }

let test_watchdog_still_fires () =
  let kinfo, trace = prep dram_kernel ~nparams:1 in
  let cfg = { Config.default with Config.watchdog_cycles = 200 } in
  let go cfg =
    match Gpu.run ~cfg stuck_factory kinfo trace with
    | Error (Sim_error.Deadlock { message; diag }) ->
      (message, diag.Sim_error.d_cycle, diag.Sim_error.d_attribution)
    | Ok _ -> Alcotest.fail "stuck engine should deadlock"
    | Error e ->
      Alcotest.failf "expected deadlock, got %s" (Sim_error.kind_name e)
  in
  let msg_on, cyc_on, attr_on = go cfg in
  let msg_off, cyc_off, attr_off = go (ff_off cfg) in
  check_string "same deadlock message" msg_off msg_on;
  check_int "same failing cycle" cyc_off cyc_on;
  check_bool "same attribution at failure" true (attr_off = attr_on)

let test_cycle_bound_fence () =
  (* bound far below the DRAM stall: the jump must be capped so the
     bound trips at exactly the stepped-mode cycle with a fully charged
     attribution *)
  let kinfo, trace = prep dram_kernel ~nparams:1 in
  let cfg =
    { Config.default with Config.watchdog_cycles = 0; max_cycles = 100 }
  in
  let go cfg =
    match Gpu.run ~cfg Engine.base_factory kinfo trace with
    | Error (Sim_error.Cycle_bound { bound; diag; _ }) ->
      (bound, diag.Sim_error.d_cycle, diag.Sim_error.d_attribution)
    | Ok _ -> Alcotest.fail "should hit the cycle bound"
    | Error e ->
      Alcotest.failf "expected cycle_bound, got %s" (Sim_error.kind_name e)
  in
  let b_on, c_on, a_on = go cfg in
  let b_off, c_off, a_off = go (ff_off cfg) in
  check_int "same bound" b_off b_on;
  check_int "same failing cycle" c_off c_on;
  check_bool "same attribution at failure" true (a_off = a_on)

(* ------------------------------------------------------------------ *)
(* Bulk-charge primitives                                              *)
(* ------------------------------------------------------------------ *)

let buckets =
  [ Obs.Attrib.Active; Obs.Attrib.Fetch_starved; Obs.Attrib.Scoreboard;
    Obs.Attrib.Barrier; Obs.Attrib.Darsie_sync; Obs.Attrib.Mem_pending;
    Obs.Attrib.Idle ]

let test_bump_n () =
  let bulk = Obs.Attrib.create () and unit = Obs.Attrib.create () in
  List.iteri
    (fun i b ->
      Obs.Attrib.bump_n bulk b (i + 3);
      for _ = 1 to i + 3 do
        Obs.Attrib.bump unit b
      done)
    buckets;
  check_bool "bump_n n = n x bump" true
    (Obs.Attrib.to_assoc bulk = Obs.Attrib.to_assoc unit);
  check_int "total" (Obs.Attrib.total unit) (Obs.Attrib.total bulk)

let test_charge_n () =
  let bulk = Obs.Pcstat.create ~n:4 and unit = Obs.Pcstat.create ~n:4 in
  Obs.Pcstat.charge_n bulk ~pc:2 Obs.Attrib.Mem_pending ~n:7;
  for _ = 1 to 7 do
    Obs.Pcstat.charge unit ~pc:2 Obs.Attrib.Mem_pending
  done;
  check_bool "charge_n n = n x charge" true
    (Obs.Attrib.to_assoc (Obs.Pcstat.bucket_totals bulk)
    = Obs.Attrib.to_assoc (Obs.Pcstat.bucket_totals unit))

let test_dram_next_event () =
  let d = Mem_model.Dram.create ~txn_cycles:2 ~latency:100 in
  check_bool "idle channel has no event" true
    (Mem_model.Dram.next_event d ~now:0 = None);
  ignore (Mem_model.Dram.request d ~now:0 ~ntxns:3);
  check_bool "busy channel drains at next_free" true
    (Mem_model.Dram.next_event d ~now:0 = Some (Mem_model.Dram.busy_until d));
  check_bool "past the drain point there is no event" true
    (Mem_model.Dram.next_event d ~now:(Mem_model.Dram.busy_until d) = None)

(* ------------------------------------------------------------------ *)
(* Whole-suite differential: all 13 apps x all 7 machines              *)
(* ------------------------------------------------------------------ *)

let all_machines =
  [ Darsie_harness.Suite.Base; Darsie_harness.Suite.Uv;
    Darsie_harness.Suite.Dac_ideal; Darsie_harness.Suite.Darsie;
    Darsie_harness.Suite.Darsie_ignore_store;
    Darsie_harness.Suite.Darsie_no_cf_sync;
    Darsie_harness.Suite.Silicon_sync ]

let matrix_cells m =
  let module Suite = Darsie_harness.Suite in
  List.concat_map
    (fun (app : Suite.app) ->
      List.map
        (fun machine ->
          let abbr = app.Suite.workload.W.abbr in
          let r = Suite.get m abbr machine in
          (match Gpu.check_attribution r.Suite.gpu with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" abbr msg);
          ( Printf.sprintf "%s/%s" abbr (Suite.machine_name machine),
            J.to_string (Darsie_harness.Metrics.of_run ~app:abbr r) ))
        all_machines)
    m.Suite.apps

(* The metrics document deliberately echoes the machine configuration,
   including the fast-forward flag itself ([machine_config.fast_forward]);
   the on/off identity contract covers every simulated field, so the
   echo is normalized away before comparing. *)
let normalize_ff s =
  let sub = {|"fast_forward":false|} and by = {|"fast_forward":true|} in
  let n = String.length s and m = String.length sub in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = sub then begin
      Buffer.add_string b by;
      i := !i + m
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* On mismatch, fail with the cell name and a window around the first
   differing byte instead of dumping two multi-kilobyte JSON documents. *)
let check_cell name off on =
  if off <> on then begin
    let n = min (String.length off) (String.length on) in
    let i = ref 0 in
    while !i < n && off.[!i] = on.[!i] do
      incr i
    done;
    let window s =
      let lo = max 0 (!i - 60) in
      String.sub s lo (min 140 (String.length s - lo))
    in
    Alcotest.failf "%s diverges at byte %d:\n  off: %s\n  on:  %s" name !i
      (window off) (window on)
  end

let test_suite_differential () =
  let jobs = Darsie_harness.Parallel.default_jobs () in
  let build cfg =
    Darsie_harness.Suite.build_matrix ~cfg ~machines:all_machines ~jobs ()
  in
  let m_off = build (ff_off Config.default) in
  let m_on = build Config.default in
  List.iter2
    (fun (name, off) (_, on) -> check_cell name (normalize_ff off) on)
    (matrix_cells m_off) (matrix_cells m_on);
  let fig8 m =
    let _, _, _, text = Darsie_harness.Figures.fig8 m in
    text
  in
  check_string "fig8 byte-identical with fast-forward on and off"
    (fig8 m_off) (fig8 m_on)

let () =
  Alcotest.run "fastforward"
    [
      ( "fences",
        [
          Alcotest.test_case "dram return" `Quick test_dram_return;
          Alcotest.test_case "barrier release" `Quick test_barrier_release;
          Alcotest.test_case "tb launch boundary" `Quick
            test_tb_launch_boundary;
          Alcotest.test_case "sampling boundary" `Quick test_sampling_boundary;
        ] );
      ( "error-paths",
        [
          Alcotest.test_case "watchdog still fires" `Quick
            test_watchdog_still_fires;
          Alcotest.test_case "cycle bound" `Quick test_cycle_bound_fence;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "attrib bump_n" `Quick test_bump_n;
          Alcotest.test_case "pcstat charge_n" `Quick test_charge_n;
          Alcotest.test_case "dram next_event" `Quick test_dram_next_event;
        ] );
      ( "differential",
        [
          Alcotest.test_case "13 apps x 7 machines" `Quick
            test_suite_differential;
        ] );
    ]
