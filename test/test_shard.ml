(* Differential tests for the sharded cycle loop: splitting one
   simulation's SM array across OCaml domains (sm_domains > 1) must be
   bit-identical to serial stepping — same cycles, stats, attribution
   and ledgers on every app, machine, fidelity knob and fast-forward
   setting, and the watchdog / cycle-bound error paths must fire at
   exactly the same cycle with the same message. *)

open Darsie_isa
open Darsie_timing
module Obs = Darsie_obs
module Sim_error = Darsie_check.Sim_error
module W = Darsie_workloads.Workload
module Suite = Darsie_harness.Suite
module J = Darsie_obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let domains n cfg = { cfg with Config.sm_domains = n }

let ff_off cfg = { cfg with Config.fast_forward = false }

let fidelity cfg = { cfg with Config.issue_width = 2; mshrs = 8 }

(* ------------------------------------------------------------------ *)
(* Crafted-kernel differential harness                                 *)
(* ------------------------------------------------------------------ *)

let prep ?(grid = Kernel.dim3 1) ?(block = Kernel.dim3 32) ktext ~nparams =
  let k = Parser.parse_kernel ktext in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.init nparams (fun _ ->
        let b = Darsie_emu.Memory.alloc mem 65536 in
        Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
        b)
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  (Kinfo.make ~warp_size:32 launch, Darsie_trace.Record.generate mem launch)

(* Everything a sharded run observably produces, as one canonical byte
   string (no pcstat / series: requesting either falls back to the
   serial loop, so there is nothing to compare). *)
let result_fingerprint (r : Gpu.result) =
  let assoc a =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         (Obs.Attrib.to_assoc a))
  in
  String.concat "\n"
    ([
       Printf.sprintf "cycles=%d" r.Gpu.cycles;
       Format.asprintf "%a" Stats.pp r.Gpu.stats;
       assoc r.Gpu.attribution;
     ]
    @ List.map assoc (Array.to_list r.Gpu.per_sm_attribution)
    @ List.map
        (fun (s : Stats.t) -> Format.asprintf "%a" Stats.pp s)
        (Array.to_list r.Gpu.per_sm))

let invariants label r =
  (match Gpu.check_attribution r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: attribution invariant: %s" label msg);
  match Gpu.check_ledger r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: ledger invariant: %s" label msg

(* Run serial and sharded, demand the per-shard invariants hold on both,
   and demand identical fingerprints. *)
let run_pair ?(cfg = Config.default) ?(engine = Engine.base_factory) ~n
    (kinfo, trace) =
  let serial = Gpu.run_exn ~cfg:(domains 1 cfg) engine kinfo trace in
  let par = Gpu.run_exn ~cfg:(domains n cfg) engine kinfo trace in
  invariants "serial" serial;
  invariants (Printf.sprintf "%d domains" n) par;
  check_string
    (Printf.sprintf "serial vs %d domains" n)
    (result_fingerprint serial) (result_fingerprint par);
  par

(* Every thread block hammers the same DRAM channel: per-TB disjoint
   lines keep many requests in flight at once, and the final read of a
   line another pass stored to makes the result sensitive to the exact
   (cycle, SM) order the channel serviced requests in. *)
let contention_kernel =
  {|
.kernel contend
.params 1
  mul.lo.u32 %r0, %ctaid.x, 2048;
  mul.lo.u32 %r1, %tid.x, 4;
  add.u32 %r2, %r0, %r1;
  add.u32 %r3, %r2, %param0;
  ld.global.u32 %r4, [%r3+0];
  add.u32 %r5, %r4, 1;
  st.global.u32 [%r3+0], %r5;
  bar.sync;
  ld.global.u32 %r6, [%r3+0];
  add.u32 %r7, %r6, %r5;
  exit;
|}

let dram_kernel =
  {|
.kernel dram
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  add.u32 %r3, %r2, 1;
  exit;
|}

let test_dram_contention () =
  let case = prep ~grid:(Kernel.dim3 16) ~block:(Kernel.dim3 128)
      contention_kernel ~nparams:1
  in
  List.iter
    (fun n ->
      let r = run_pair ~n case in
      check_bool "contention scenario really hits DRAM" true
        (r.Gpu.stats.Stats.dram_transactions > 100))
    [ 2; 4 ];
  ignore (run_pair ~cfg:(ff_off Config.default) ~n:4 case)

let test_tb_turnover () =
  (* many more TBs than slots: retirements open dispatch scans mid-epoch,
     which the barrier must replay in exact serial order *)
  let case = prep ~grid:(Kernel.dim3 64) dram_kernel ~nparams:1 in
  ignore (run_pair ~n:2 case);
  ignore (run_pair ~n:4 case);
  ignore (run_pair ~cfg:(ff_off Config.default) ~n:2 case)

let test_fidelity_knobs () =
  let case = prep ~grid:(Kernel.dim3 16) ~block:(Kernel.dim3 128)
      contention_kernel ~nparams:1
  in
  ignore (run_pair ~cfg:(fidelity Config.default) ~n:4 case);
  ignore (run_pair ~cfg:(ff_off (fidelity Config.default)) ~n:4 case)

let test_auto_and_slack_knobs () =
  (* sm_domains 0 auto-sizes; tiny explicit epoch_slack still agrees *)
  let case = prep ~grid:(Kernel.dim3 8) dram_kernel ~nparams:1 in
  ignore (run_pair ~n:0 case);
  ignore (run_pair ~cfg:{ Config.default with Config.epoch_slack = 7 } ~n:3 case);
  ignore
    (run_pair ~cfg:{ Config.default with Config.epoch_slack = 1 } ~n:2 case)

(* ------------------------------------------------------------------ *)
(* Error paths: same failure at the same cycle, serial or sharded      *)
(* ------------------------------------------------------------------ *)

let stuck_factory ki cfg stats =
  let e = Engine.base_factory ki cfg stats in
  { e with Engine.can_fetch = (fun _ -> false) }

let test_watchdog_parity () =
  let kinfo, trace = prep dram_kernel ~nparams:1 in
  let go cfg =
    match Gpu.run ~cfg stuck_factory kinfo trace with
    | Error (Sim_error.Deadlock { message; diag }) ->
      (message, diag.Sim_error.d_cycle, diag.Sim_error.d_attribution)
    | Ok _ -> Alcotest.fail "stuck engine should deadlock"
    | Error e ->
      Alcotest.failf "expected deadlock, got %s" (Sim_error.kind_name e)
  in
  List.iter
    (fun watchdog_cycles ->
      let cfg = { Config.default with Config.watchdog_cycles } in
      let msg_s, cyc_s, attr_s = go (domains 1 cfg) in
      List.iter
        (fun n ->
          let msg_p, cyc_p, attr_p = go (domains n cfg) in
          check_string "same deadlock message" msg_s msg_p;
          check_int "same failing cycle" cyc_s cyc_p;
          check_bool "same attribution at failure" true (attr_s = attr_p))
        [ 2; 4 ])
    [ 200; 1000 ]

let test_cycle_bound_parity () =
  let kinfo, trace = prep dram_kernel ~nparams:1 in
  let cfg =
    { Config.default with Config.watchdog_cycles = 0; max_cycles = 100 }
  in
  let go cfg =
    match Gpu.run ~cfg Engine.base_factory kinfo trace with
    | Error (Sim_error.Cycle_bound { bound; diag; _ }) ->
      (bound, diag.Sim_error.d_cycle, diag.Sim_error.d_attribution)
    | Ok _ -> Alcotest.fail "should hit the cycle bound"
    | Error e ->
      Alcotest.failf "expected cycle_bound, got %s" (Sim_error.kind_name e)
  in
  let b_s, c_s, a_s = go (domains 1 cfg) in
  let b_p, c_p, a_p = go (domains 4 cfg) in
  check_int "same bound" b_s b_p;
  check_int "same failing cycle" c_s c_p;
  check_bool "same attribution at failure" true (a_s = a_p)

(* ------------------------------------------------------------------ *)
(* Serial fallbacks: diagnostics force the serial loop, same results   *)
(* ------------------------------------------------------------------ *)

let test_diagnostic_fallbacks () =
  let kinfo, trace = prep ~grid:(Kernel.dim3 8) dram_kernel ~nparams:1 in
  let cfg = domains 4 Config.default in
  let plain = Gpu.run_exn ~cfg Engine.base_factory kinfo trace in
  (* pcstat / series requests take the serial loop but must agree with
     the sharded result on everything both produce *)
  let p = Gpu.run_exn ~cfg ~pcstat:true Engine.base_factory kinfo trace in
  let s = Gpu.run_exn ~cfg ~sample_interval:64 Engine.base_factory kinfo trace in
  check_int "pcstat fallback cycles" plain.Gpu.cycles p.Gpu.cycles;
  check_int "series fallback cycles" plain.Gpu.cycles s.Gpu.cycles;
  check_bool "pcstat fallback produced a profile" true (p.Gpu.pcstat <> None);
  check_bool "series fallback produced samples" true
    (Array.length s.Gpu.series > 0);
  check_string "fallback stats agree"
    (Format.asprintf "%a" Stats.pp plain.Gpu.stats)
    (Format.asprintf "%a" Stats.pp p.Gpu.stats)

(* ------------------------------------------------------------------ *)
(* Whole-suite differential: 13 apps x 7 machines, serial vs sharded   *)
(* ------------------------------------------------------------------ *)

let matrix_cells m =
  List.concat_map
    (fun (app : Suite.app) ->
      List.map
        (fun machine ->
          let abbr = app.Suite.workload.W.abbr in
          let r = Suite.get m abbr machine in
          invariants (Printf.sprintf "%s/%s" abbr (Suite.machine_name machine))
            r.Suite.gpu;
          ( Printf.sprintf "%s/%s" abbr (Suite.machine_name machine),
            J.to_string (Darsie_harness.Metrics.of_run ~app:abbr r) ))
        Suite.all_machines)
    m.Suite.apps

let check_cell name a b =
  if a <> b then begin
    let n = min (String.length a) (String.length b) in
    let i = ref 0 in
    while !i < n && a.[!i] = b.[!i] do
      incr i
    done;
    let window s =
      let lo = max 0 (!i - 60) in
      String.sub s lo (min 140 (String.length s - lo))
    in
    Alcotest.failf "%s diverges at byte %d:\n  serial:  %s\n  sharded: %s" name
      !i (window a) (window b)
  end

(* sm_domains is a host knob, not a machine parameter: it is excluded
   from the metrics machine_config echo, so the documents must be
   byte-identical with no normalization at all. *)
let suite_differential ~n cfg () =
  (* jobs:1 keeps the process pool out of the picture: every run in the
     matrix takes the sharded path (with jobs > 1 the core-budget rule
     would divide sm_domains down) *)
  let build cfg = Suite.build_matrix ~cfg ~jobs:1 () in
  let m_serial = build (domains 1 cfg) in
  let m_par = build (domains n cfg) in
  List.iter2
    (fun (name, serial) (_, par) -> check_cell name serial par)
    (matrix_cells m_serial) (matrix_cells m_par)

let () =
  Alcotest.run "shard"
    [
      ( "crafted",
        [
          Alcotest.test_case "dram contention" `Quick test_dram_contention;
          Alcotest.test_case "tb turnover" `Quick test_tb_turnover;
          Alcotest.test_case "fidelity knobs" `Quick test_fidelity_knobs;
          Alcotest.test_case "auto domains and slack" `Quick
            test_auto_and_slack_knobs;
        ] );
      ( "error-paths",
        [
          Alcotest.test_case "watchdog parity" `Quick test_watchdog_parity;
          Alcotest.test_case "cycle bound parity" `Quick
            test_cycle_bound_parity;
          Alcotest.test_case "diagnostic fallbacks" `Quick
            test_diagnostic_fallbacks;
        ] );
      ( "differential",
        [
          Alcotest.test_case "13 apps x 7 machines, 2 domains" `Quick
            (suite_differential ~n:2 Config.default);
          Alcotest.test_case "13 apps x 7 machines, 4 domains, no ff" `Quick
            (suite_differential ~n:4 (ff_off Config.default));
          Alcotest.test_case "13 apps x 7 machines, 4 domains, fidelity"
            `Quick
            (suite_differential ~n:4 (fidelity Config.default));
        ] );
    ]
