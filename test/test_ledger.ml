(* Skip-ledger tests: the accounting structure itself, the conservation
   invariant (eligible = Σ fates, per PC, per SM, aggregate = Σ per-SM)
   across the whole app × machine matrix, fast-forward bit-identity of
   the ledger, and fault injection — a broken engine must perturb the
   ledger detectably (conservation failure for a lost-update fault,
   divergent counts for a misclassification fault). *)

open Darsie_isa
open Darsie_timing
module Obs = Darsie_obs
module Suite = Darsie_harness.Suite
module W = Darsie_workloads.Workload
module J = Darsie_obs.Json
module L = Darsie_obs.Ledger

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* The ledger structure                                                *)
(* ------------------------------------------------------------------ *)

let test_taxonomy () =
  check_int "eleven fates" 11 L.nfates;
  check_int "all_fates lists them all" L.nfates (List.length L.all_fates);
  let names = List.map L.fate_name L.all_fates in
  check_int "fate names unique" L.nfates
    (List.length (List.sort_uniq compare names));
  check_bool "snake_case names" true
    (List.for_all
       (fun n -> String.lowercase_ascii n = n && not (String.contains n ' '))
       names)

let test_counting () =
  let t = L.create ~n:4 in
  check_int "empty expected_total" 0 (L.expected_total t);
  check_int "empty captured" 0 (L.captured t);
  Alcotest.(check (float 1e-9)) "empty coverage is 1.0" 1.0 (L.coverage t);
  (match L.check t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "empty ledger must conserve: %s" m);
  (* three eligible occurrences at pc 1: skip, park, leader *)
  L.note_expected t ~pc:1;
  L.note_expected t ~pc:1;
  L.note_expected t ~pc:1;
  L.note t ~pc:1 L.Skipped;
  L.note t ~pc:1 L.Parked_waiting_leaderwb;
  L.note t ~pc:1 L.Leader_executed;
  (* one at pc 3, disabled *)
  L.note_expected t ~pc:3;
  L.note t ~pc:3 L.Skip_disabled;
  check_int "expected at pc 1" 3 (L.expected t ~pc:1);
  check_int "skipped at pc 1" 1 (L.get t ~pc:1 L.Skipped);
  check_int "expected_total" 4 (L.expected_total t);
  check_int "captured counts skipped + parked" 2 (L.captured t);
  Alcotest.(check (float 1e-9)) "coverage" 0.5 (L.coverage t);
  (match L.check t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "balanced ledger must conserve: %s" m);
  (* now unbalance it: an eligible occurrence with no recorded fate *)
  L.note_expected t ~pc:2;
  (match L.check t with
  | Ok () -> Alcotest.fail "unbalanced ledger must fail check"
  | Error m -> check_bool "error message is diagnostic" true (m <> ""));
  ignore (L.totals_assoc t)

let test_add_and_totals () =
  let a = L.create ~n:2 and b = L.create ~n:2 in
  L.note_expected a ~pc:0;
  L.note a ~pc:0 L.Skipped;
  L.note_expected b ~pc:0;
  L.note b ~pc:0 L.Evicted_capacity;
  L.note_expected b ~pc:1;
  L.note b ~pc:1 L.Freelist_stall;
  L.add a b;
  check_int "add merges expected" 3 (L.expected_total a);
  check_int "add merges fates" 1 (L.get a ~pc:0 L.Evicted_capacity);
  (match L.check a with
  | Ok () -> ()
  | Error m -> Alcotest.failf "sum of conserving ledgers conserves: %s" m);
  let totals = L.totals_assoc a in
  check_int "totals_assoc covers every fate" L.nfates (List.length totals);
  check_int "totals sum to expected_total" (L.expected_total a)
    (List.fold_left (fun acc (_, v) -> acc + v) 0 totals)

let test_to_json () =
  let t = L.create ~n:3 in
  L.note_expected t ~pc:1;
  L.note t ~pc:1 L.Skipped;
  let doc = L.to_json t in
  let geti k =
    match J.member k doc with
    | Some v -> ( match J.to_int v with Some i -> i | None -> -1)
    | None -> -1
  in
  check_int "json expected_total" 1 (geti "expected_total");
  check_int "json captured" 1 (geti "captured");
  (match J.member "totals" doc with
  | Some (J.Obj kvs) ->
    check_int "json totals has all fates" L.nfates (List.length kvs)
  | _ -> Alcotest.fail "totals must be an object");
  match J.member "rows" doc with
  | Some (J.List rows) ->
    (* only touched PCs appear *)
    check_int "one row" 1 (List.length rows)
  | _ -> Alcotest.fail "rows must be a list"

(* ------------------------------------------------------------------ *)
(* Crafted-kernel run: conservation + fast-forward bit-identity        *)
(* ------------------------------------------------------------------ *)

(* Mostly-DR body with one promotable CR op; block (32,4) gives four
   warps per TB so followers actually skip behind a leader. *)
let red_kernel =
  {|
.kernel red
.params 2
  mov.u32 %r0, %param0;
  ld.global.u32 %r1, [%r0+0];
  add.u32 %r2, %r1, 42;
  shl.b32 %r3, %tid.x, 2;
  mad.lo.u32 %r4, %tid.y, 128, %r3;
  add.u32 %r5, %r4, %param1;
  st.global.u32 [%r5+0], %r2;
  exit;
|}

let prep ?(grid = Kernel.dim3 4) ?(block = Kernel.dim3 ~y:4 32) ktext
    ~nparams =
  let k = Parser.parse_kernel ktext in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.init nparams (fun _ ->
        let b = Darsie_emu.Memory.alloc mem 65536 in
        Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
        b)
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  (Kinfo.make ~warp_size:32 launch, Darsie_trace.Record.generate mem launch)

let darsie_factory = Darsie_core.Darsie_engine.factory ()

let run_red ?(engine = darsie_factory) ?(cfg = Config.default) () =
  let kinfo, trace = prep red_kernel ~nparams:2 in
  Gpu.run_exn ~cfg engine kinfo trace

let ledger_fingerprint (r : Gpu.result) =
  J.pretty_to_string (L.to_json r.Gpu.ledger)

let test_crafted_conservation () =
  let r = run_red () in
  (match Gpu.check_ledger r with
  | Ok () -> ()
  | Error m -> Alcotest.failf "conservation on crafted kernel: %s" m);
  check_bool "crafted kernel has eligible occurrences" true
    (L.expected_total r.Gpu.ledger > 0);
  check_bool "DARSIE captures some of them" true (L.captured r.Gpu.ledger > 0)

let test_ff_bit_identity () =
  let on = run_red () in
  let off =
    run_red ~cfg:{ Config.default with Config.fast_forward = false } ()
  in
  check_string "ledger byte-identical with fast-forward on and off"
    (ledger_fingerprint off) (ledger_fingerprint on)

(* ------------------------------------------------------------------ *)
(* Matrix conservation property                                        *)
(* ------------------------------------------------------------------ *)

let all_machines =
  [ Suite.Base; Suite.Uv; Suite.Dac_ideal; Suite.Darsie;
    Suite.Darsie_ignore_store; Suite.Darsie_no_cf_sync; Suite.Silicon_sync ]

let test_matrix_conservation () =
  let jobs = Darsie_harness.Parallel.default_jobs () in
  let m = Suite.build_matrix ~machines:all_machines ~jobs () in
  List.iter
    (fun (app : Suite.app) ->
      let abbr = app.Suite.workload.W.abbr in
      (* eligible occurrences are a property of the trace, not of the
         machine: identical down every column of the matrix *)
      let expected machine =
        L.expected_total (Suite.get m abbr machine).Suite.gpu.Gpu.ledger
      in
      let base_expected = expected Suite.Base in
      List.iter
        (fun machine ->
          let r = (Suite.get m abbr machine).Suite.gpu in
          (match Gpu.check_ledger r with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "conservation %s/%s: %s" abbr
              (Suite.machine_name machine) msg);
          check_int
            (Printf.sprintf "machine-independent eligible count %s/%s" abbr
               (Suite.machine_name machine))
            base_expected (expected machine))
        all_machines;
      (* machines without a skip engine capture nothing *)
      check_int
        (Printf.sprintf "BASE captures nothing (%s)" abbr)
        0
        (L.captured (Suite.get m abbr Suite.Base).Suite.gpu.Gpu.ledger))
    m.Suite.apps;
  (* the tentpole's derived metric is well-defined on this matrix *)
  let rows, gmean, _text = Darsie_harness.Figures.coverage m in
  check_int "coverage row per app" (List.length m.Suite.apps)
    (List.length rows);
  check_bool "DARSIE captures redundancy somewhere" true (gmean > 0.0)

(* ------------------------------------------------------------------ *)
(* Fault injection: broken engines must perturb the ledger             *)
(* ------------------------------------------------------------------ *)

(* Lost-update fault: the engine records its follower-skip fates into a
   decoy ledger instead of the SM's, so skipped/parked occurrences
   vanish from the books. Conservation must catch it. *)
let decoy_factory ki cfg stats =
  let e = darsie_factory ki cfg stats in
  {
    e with
    Engine.set_ledger =
      (fun real ->
        ignore real;
        e.Engine.set_ledger (L.create ~n:256));
  }

let test_fault_lost_updates () =
  let r = run_red ~engine:decoy_factory () in
  match Gpu.check_ledger r with
  | Ok () ->
    Alcotest.fail "lost follower-skip updates must break conservation"
  | Error _ -> ()

(* Misclassification fault: every really-executed eligible occurrence
   reports Skipped. Conservation still balances — the counts are wrong,
   not missing — so the detection signal is the diff against a clean
   run, which is exactly what the fast-forward differential and the
   bench trendline consume. *)
let misreport_factory ki cfg stats =
  let e = darsie_factory ki cfg stats in
  { e with Engine.exec_fate = (fun _ _ -> L.Skipped) }

let test_fault_misreported_fate () =
  let clean = run_red () in
  let faulty = run_red ~engine:misreport_factory () in
  (match Gpu.check_ledger faulty with
  | Ok () -> ()
  | Error m ->
    Alcotest.failf "misreporting balances the books, expected Ok: %s" m);
  check_bool "fault is detectable in the ledger" true
    (ledger_fingerprint clean <> ledger_fingerprint faulty);
  check_bool "misreporting inflates captured" true
    (L.captured faulty.Gpu.ledger > L.captured clean.Gpu.ledger);
  check_int "but leaves the eligible count alone"
    (L.expected_total clean.Gpu.ledger)
    (L.expected_total faulty.Gpu.ledger)

let () =
  Alcotest.run "ledger"
    [
      ( "structure",
        [
          Alcotest.test_case "fate taxonomy" `Quick test_taxonomy;
          Alcotest.test_case "counting and check" `Quick test_counting;
          Alcotest.test_case "add and totals" `Quick test_add_and_totals;
          Alcotest.test_case "to_json" `Quick test_to_json;
        ] );
      ( "runs",
        [
          Alcotest.test_case "crafted conservation" `Quick
            test_crafted_conservation;
          Alcotest.test_case "fast-forward bit-identity" `Quick
            test_ff_bit_identity;
          Alcotest.test_case "matrix conservation" `Slow
            test_matrix_conservation;
        ] );
      ( "faults",
        [
          Alcotest.test_case "lost updates break conservation" `Quick
            test_fault_lost_updates;
          Alcotest.test_case "misreported fate diverges from clean" `Quick
            test_fault_misreported_fate;
        ] );
    ]
