(* Tests for the host-telemetry layer: the integer self-time invariant,
   schedule-independence of the normalized span forms and counter
   totals, Chrome-trace string escaping round-trips, host_telemetry
   document validation, the trendline's telemetry fields, and the
   progress/straggler channel. *)

open Darsie_harness
module Tel = Darsie_telemetry.Telemetry
module Host_trace = Darsie_telemetry.Host_trace
module J = Darsie_obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let parse s =
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.fail ("json parse: " ^ e)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Span accounting *)

let test_span_invariants () =
  Tel.reset ();
  Tel.enable ();
  Tel.span "outer" (fun () ->
      Tel.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
      Tel.span "inner" (fun () -> ()));
  (try Tel.span "raiser" (fun () -> failwith "boom")
   with Failure _ -> ());
  Tel.incr "x";
  Tel.incr ~by:2 "x";
  let snap = Tel.snapshot () in
  let phases = Tel.phases snap in
  let count name =
    match List.assoc_opt name phases with
    | Some (c, _, _) -> c
    | None -> 0
  in
  check_int "outer recorded once" 1 (count "outer");
  check_int "inner recorded twice" 2 (count "inner");
  check_int "raised span still recorded" 1 (count "raiser");
  List.iter
    (fun (name, (_, total, self)) ->
      check_bool (name ^ ": 0 <= self <= total") true
        (0 <= self && self <= total))
    phases;
  let self_sum =
    List.fold_left (fun acc (_, (_, _, s)) -> acc + s) 0 phases
  in
  let busy_sum =
    List.fold_left (fun acc d -> acc + d.Tel.dv_busy_ns) 0 snap.Tel.sn_domains
  in
  check_int "sum of phase self = sum of domain busy" busy_sum self_sum;
  check_int "counters merge" 3 (List.assoc "x" snap.Tel.sn_counters);
  (* the raising span is flagged *)
  let norm = J.to_string (Host_trace.normalized_spans snap) in
  check_bool "raised arg present" true (contains norm "raised")

(* ------------------------------------------------------------------ *)
(* Schedule-independence *)

let small_apps =
  [ Darsie_workloads.Bin_opt.workload; Darsie_workloads.Matmul.workload ]

let small_machines = [ Suite.Base; Suite.Darsie ]

let build jobs =
  Tel.reset ();
  Tel.enable ();
  ignore
    (Suite.build_matrix ~apps:small_apps ~machines:small_machines ~jobs ());
  Tel.snapshot ()

let counters_fingerprint snap =
  J.to_string
    (J.Obj (List.map (fun (k, v) -> (k, J.Int v)) snap.Tel.sn_counters))

let test_normalized_determinism () =
  let a = build 4 in
  let b = build 4 in
  check_string "normalized spans identical across -j4 runs"
    (J.to_string (Host_trace.normalized_spans a))
    (J.to_string (Host_trace.normalized_spans b));
  check_string "normalized summary identical across -j4 runs"
    (J.to_string (Host_trace.normalized_summary a))
    (J.to_string (Host_trace.normalized_summary b));
  check_string "counters identical across -j4 runs" (counters_fingerprint a)
    (counters_fingerprint b)

let test_counter_totals_jobs () =
  check_string "counter totals -j1 = -j4"
    (counters_fingerprint (build 1))
    (counters_fingerprint (build 4))

(* ------------------------------------------------------------------ *)
(* Chrome-trace escaping *)

let nasty = "ba\\ck\"quote\"\ttab\nnewline \x01ctl \xe2\x9c\x93 end"

let nasty_snapshot () =
  Tel.reset ();
  Tel.enable ();
  Tel.span
    ~args:[ ("msg", Tel.Str nasty); ("n", Tel.Int 3) ]
    nasty
    (fun () -> ());
  Tel.snapshot ()

(* find a ph:"X" event by name in a parsed traceEvents list *)
let find_span_event doc name =
  match J.member "traceEvents" doc with
  | Some (J.List events) ->
    List.find_opt
      (fun e ->
        J.member "name" e = Some (J.String name)
        && J.member "ph" e = Some (J.String "X"))
      events
  | _ -> None

let test_chrome_escaping () =
  let snap = nasty_snapshot () in
  let doc = Host_trace.document snap in
  let reread = parse (J.to_string doc) in
  (match find_span_event reread nasty with
  | None -> Alcotest.fail "nasty span name lost in round-trip"
  | Some e ->
    check_bool "nasty arg string survives" true
      (match J.member "args" e with
      | Some args -> J.member "msg" args = Some (J.String nasty)
      | None -> false));
  (* the same events merged into a simulated-GPU chrome trace *)
  let merged =
    Darsie_obs.Export.chrome_trace
      ~extra:(Host_trace.chrome_events snap)
      ~name:"escape-test" ()
  in
  (match find_span_event (parse (J.to_string merged)) nasty with
  | None -> Alcotest.fail "nasty span lost through Export.chrome_trace"
  | Some _ -> ());
  (* and the summary section itself parses back *)
  check_bool "document validates" true
    (Metrics.validate_telemetry doc = Ok ())

(* ------------------------------------------------------------------ *)
(* Validator *)

let replace obj k v =
  match obj with
  | J.Obj fields ->
    J.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields)
  | other -> other

let test_validator () =
  let section = Host_trace.host_telemetry_json (nasty_snapshot ()) in
  check_bool "bare section accepted" true
    (Metrics.validate_telemetry section = Ok ());
  let rejects label doc =
    check_bool label true
      (match Metrics.validate_telemetry doc with
      | Error _ -> true
      | Ok () -> false)
  in
  rejects "wrong kind" (replace section "kind" (J.String "bogus"));
  rejects "wrong schema_version" (replace section "schema_version" (J.Int 999));
  rejects "negative wall" (replace section "wall_ns" (J.Int (-1)));
  rejects "negative counter"
    (replace section "counters" (J.Obj [ ("oops", J.Int (-3)) ]));
  (* perturbing any phase self time breaks the exact integer identity
     [sum self = sum busy] *)
  (match J.member "phases" section with
  | Some (J.List (p :: rest)) ->
    let self =
      match Option.bind (J.member "self_ns" p) J.to_int with
      | Some s -> s
      | None -> Alcotest.fail "phase lacks self_ns"
    in
    rejects "self-time identity broken"
      (replace section "phases"
         (J.List (replace p "self_ns" (J.Int (self + 1)) :: rest)))
  | _ -> Alcotest.fail "section lacks phases")

(* ------------------------------------------------------------------ *)
(* Trendline telemetry fields *)

let test_trendline_fields () =
  let m =
    Suite.build_matrix
      ~apps:[ Darsie_workloads.Bin_opt.workload ]
      ~machines:
        [ Suite.Base; Suite.Uv; Suite.Dac_ideal; Suite.Darsie;
          Suite.Darsie_ignore_store ]
      ~jobs:1 ()
  in
  let r =
    Trendline.of_matrix
      ~host_phases:[ ("sim.run", 1.5); ("trace.load", 0.25) ]
      ~cache_hit_rate:0.25 ~date:"2026-01-01" ~label:"test" ~wall_s:1.0
      ~repeats:1 m
  in
  (match Trendline.of_json (Trendline.to_json r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    check_bool "host_phases round-trip" true
      (r'.Trendline.host_phases = r.Trendline.host_phases);
    check_bool "cache_hit_rate round-trip" true
      (r'.Trendline.cache_hit_rate = Some 0.25));
  (* a baseline written before host telemetry still loads *)
  let stripped =
    match Trendline.to_json r with
    | J.Obj fields ->
      J.Obj
        (List.filter
           (fun (k, _) -> k <> "host_phases" && k <> "cache_hit_rate")
           fields)
    | other -> other
  in
  (match Trendline.of_json stripped with
  | Error e -> Alcotest.fail ("old baseline rejected: " ^ e)
  | Ok r' ->
    check_bool "missing host_phases reads as []" true
      (r'.Trendline.host_phases = []);
    check_bool "missing cache_hit_rate reads as None" true
      (r'.Trendline.cache_hit_rate = None));
  (* both records carrying the fields -> the gate compares them *)
  let verdicts =
    Trendline.compare_records ~baseline:r ~current:r ()
  in
  check_bool "cache_hit_rate gated" true
    (List.exists (fun v -> v.Trendline.metric = "cache_hit_rate") verdicts);
  check_bool "host phases gated" true
    (List.exists
       (fun v -> v.Trendline.metric = "host_phase.sim.run")
       verdicts);
  (* ...and not against a pre-telemetry baseline *)
  (match Trendline.of_json stripped with
  | Ok old ->
    let verdicts = Trendline.compare_records ~baseline:old ~current:r () in
    check_bool "cache_hit_rate skipped vs old baseline" true
      (not
         (List.exists
            (fun v -> v.Trendline.metric = "cache_hit_rate")
            verdicts))
  | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Progress channel *)

let test_progress_and_straggler () =
  let buf = Buffer.create 256 in
  Tel.Progress.configure
    ~out:(fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    Tel.Progress.Ndjson;
  Fun.protect
    ~finally:(fun () -> Tel.Progress.configure Tel.Progress.Off)
    (fun () ->
      Tel.reset ();
      let _ =
        Parallel.run ~jobs:2
          ~label:(Printf.sprintf "item-%d")
          (fun x ->
            if x = 0 then Unix.sleepf 0.05;
            x)
          [ 0; 1; 2; 3 ]
      in
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> l <> "")
        |> List.map parse
      in
      let events kind =
        List.filter (fun l -> J.member "event" l = Some (J.String kind)) lines
      in
      check_bool "at least one item heartbeat" true (events "item" <> []);
      (* the final item always emits, with k = n *)
      check_bool "final item reports 4/4" true
        (List.exists
           (fun l ->
             J.member "k" l = Some (J.Int 4) && J.member "n" l = Some (J.Int 4))
           (events "item"));
      (* item 0 slept through >50% of the pool wall: straggler warning *)
      check_bool "straggler warning names the item" true
        (List.exists
           (fun l ->
             match J.member "message" l with
             | Some (J.String m) -> contains m "straggler" && contains m "item-0"
             | _ -> false)
           (events "warn")))

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [ Alcotest.test_case "self-time invariants" `Quick test_span_invariants ]
      );
      ( "determinism",
        [
          Alcotest.test_case "normalized forms, -j4 twice" `Quick
            test_normalized_determinism;
          Alcotest.test_case "counter totals, -j1 = -j4" `Quick
            test_counter_totals_jobs;
        ] );
      ( "escaping",
        [ Alcotest.test_case "chrome round-trip" `Quick test_chrome_escaping ]
      );
      ( "validator",
        [ Alcotest.test_case "accept / reject" `Quick test_validator ] );
      ( "trendline",
        [ Alcotest.test_case "telemetry fields" `Quick test_trendline_fields ]
      );
      ( "progress",
        [
          Alcotest.test_case "heartbeats + straggler" `Quick
            test_progress_and_straggler;
        ] );
    ]
