(* Tests for the parallel suite runner and the functional-trace cache:
   the Parallel pool's ordering/isolation contract, schedule-independence
   of the merged matrix (the -j 1 vs -j 4 byte-identity the CLI and bench
   rely on), and trace-cache hits producing identical figures. *)

open Darsie_harness
module W = Darsie_workloads.Workload
module J = Darsie_obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* The pool itself *)

let test_pool_order () =
  let items = List.init 100 Fun.id in
  let doubled = Parallel.map ~jobs:4 (fun x -> 2 * x) items in
  check_bool "results in input order" true
    (doubled = List.map (fun x -> 2 * x) items);
  check_bool "serial path agrees" true
    (Parallel.map ~jobs:1 (fun x -> 2 * x) items = doubled);
  check_int "empty input" 0 (List.length (Parallel.map ~jobs:4 Fun.id []));
  check_bool "default_jobs positive" true (Parallel.default_jobs () >= 1)

exception Boom of int

let test_pool_isolation () =
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  let outcomes = Parallel.run ~jobs:4 f [ 1; 2; 3; 4; 5; 6 ] in
  let expect =
    [ Ok 1; Ok 2; Error (Boom 3); Ok 4; Ok 5; Error (Boom 6) ]
  in
  check_bool "crashes poison only their slot" true (outcomes = expect);
  (* map re-raises the first failure in input order, whatever the
     schedule *)
  (match Parallel.map ~jobs:4 f [ 5; 3; 6; 1 ] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> check_int "first in input order" 3 n);
  (* jobs <= 1 never spawns and is fail-fast like List.map *)
  let ran = ref [] in
  (match
     Parallel.map ~jobs:1
       (fun x ->
         ran := x :: !ran;
         f x)
       [ 1; 3; 5 ]
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom n -> check_int "fail-fast" 3 n);
  check_bool "stopped at the failure" true (!ran = [ 3; 1 ])

(* ------------------------------------------------------------------ *)
(* Schedule-independence of the merged matrix *)

let small_apps =
  [ Darsie_workloads.Bin_opt.workload; Darsie_workloads.Matmul.workload ]

(* the machines Figures.fig8 (and so Trendline.of_matrix) reads *)
let small_machines =
  [ Suite.Base; Suite.Uv; Suite.Dac_ideal; Suite.Darsie;
    Suite.Darsie_ignore_store ]

(* Everything the suite exports, as one canonical byte string: the
   per-cell metrics documents in deterministic order plus a trendline
   record with the nondeterministic wall fields pinned. *)
let matrix_fingerprint m =
  let cells =
    List.concat_map
      (fun (app : Suite.app) ->
        List.map
          (fun machine ->
            let abbr = app.Suite.workload.W.abbr in
            let r = Suite.get m abbr machine in
            J.to_string (Metrics.of_run ~app:abbr r))
          small_machines)
      m.Suite.apps
  in
  let record =
    Trendline.of_matrix ~date:"2026-01-01" ~label:"test" ~wall_s:1.0 ~repeats:1
      m
  in
  String.concat "\n" cells ^ "\n" ^ J.to_string (Trendline.to_json record)

let test_matrix_determinism () =
  let build jobs =
    Suite.build_matrix ~apps:small_apps ~machines:small_machines ~jobs ()
  in
  let serial = matrix_fingerprint (build 1) in
  let parallel = matrix_fingerprint (build 4) in
  check_string "metrics + trendline JSON byte-identical at -j 1 and -j 4"
    serial parallel

let test_checker_determinism () =
  let strip_elapsed json =
    (* elapsed_s is processor time and legitimately varies; every other
       field of the check report must not. *)
    match json with
    | J.Obj fields ->
      J.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "elapsed_s" then None
             else
               match v with
               | J.List apps ->
                 Some
                   ( k,
                     J.List
                       (List.map
                          (function
                            | J.Obj af ->
                              J.Obj
                                (List.filter
                                   (fun (k, _) -> k <> "elapsed_s")
                                   af)
                            | other -> other)
                          apps) )
               | _ -> Some (k, v))
           fields)
    | other -> other
  in
  let report jobs =
    Checker.check_suite ~jobs ~apps:small_apps ~inject:2 ~seed:11 ()
  in
  let j1 = J.to_string (strip_elapsed (Checker.to_json (report 1))) in
  let j4 = J.to_string (strip_elapsed (Checker.to_json (report 4))) in
  check_string "check report identical at -j 1 and -j 4" j1 j4

(* ------------------------------------------------------------------ *)
(* Trace cache *)

let with_tmp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "darsie-cache-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f (Darsie_trace.Cache.create ~dir ()))

let test_cache_roundtrip () =
  with_tmp_cache (fun cache ->
      let w = Darsie_workloads.Matmul.workload in
      let fresh = Suite.load_app w in
      let a1 = Suite.load_app ~cache w in
      check_int "first load misses" 1 (Darsie_trace.Cache.misses cache);
      check_int "first load stores" 1 (Darsie_trace.Cache.stores cache);
      let a2 = Suite.load_app ~cache w in
      check_int "second load hits" 1 (Darsie_trace.Cache.hits cache);
      (* the cached trace is the same data... *)
      check_int "total ops preserved"
        (Darsie_trace.Record.total_ops a1.Suite.trace)
        (Darsie_trace.Record.total_ops a2.Suite.trace);
      check_bool "ops byte-identical" true
        (a1.Suite.trace.Darsie_trace.Record.tbs
        = a2.Suite.trace.Darsie_trace.Record.tbs);
      (* ...and replaying it produces identical figures *)
      let cycles app machine =
        (Suite.run_app app machine).Suite.gpu.Darsie_timing.Gpu.cycles
      in
      check_int "BASE cycles identical from cache" (cycles fresh Suite.Base)
        (cycles a2 Suite.Base);
      check_int "DARSIE cycles identical from cache" (cycles fresh Suite.Darsie)
        (cycles a2 Suite.Darsie))

let test_cache_key_content () =
  let w = Darsie_workloads.Matmul.workload in
  let launch1 = (w.W.prepare ~scale:1).W.launch in
  let launch2 = (w.W.prepare ~scale:1).W.launch in
  let k1 = Darsie_trace.Cache.key ~name:w.W.abbr ~scale:1 launch1 in
  check_string "key is a function of content" k1
    (Darsie_trace.Cache.key ~name:w.W.abbr ~scale:1 launch2);
  check_bool "scale is part of the key" true
    (k1 <> Darsie_trace.Cache.key ~name:w.W.abbr ~scale:2 launch1);
  check_bool "name is part of the key" true
    (k1 <> Darsie_trace.Cache.key ~name:"other" ~scale:1 launch1)

let test_cache_corruption () =
  with_tmp_cache (fun cache ->
      let w = Darsie_workloads.Bin_opt.workload in
      let _ = Suite.load_app ~cache w in
      (* truncate the single entry to garbage *)
      let dir = Darsie_trace.Cache.dir cache in
      Array.iter
        (fun e ->
          let oc = open_out (Filename.concat dir e) in
          output_string oc "not a trace";
          close_out oc)
        (Sys.readdir dir);
      let a = Suite.load_app ~cache w in
      check_int "corrupt entry reads as a miss" 2
        (Darsie_trace.Cache.misses cache);
      check_int "and is regenerated" 2 (Darsie_trace.Cache.stores cache);
      check_bool "with a usable trace" true
        (Darsie_trace.Record.total_ops a.Suite.trace > 0))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_order;
          Alcotest.test_case "crash isolation" `Quick test_pool_isolation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "matrix -j1 = -j4" `Quick test_matrix_determinism;
          Alcotest.test_case "checker -j1 = -j4" `Quick
            test_checker_determinism;
        ] );
      ( "trace-cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "content key" `Quick test_cache_key_content;
          Alcotest.test_case "corruption" `Quick test_cache_corruption;
        ] );
    ]
