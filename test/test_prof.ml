(* Tests for the per-instruction profiler and the bench trajectory
   store: Pcstat bookkeeping, the cross-layer conservation invariant on
   real Table-1 apps (per-PC stall charges reproduce the per-SM
   attribution), skip-table telemetry agreement with the pipeline
   counters, the annotate renderer, and the Trendline round-trip plus
   its regression gate. *)

open Darsie_harness
module Obs = Darsie_obs
module Gpu = Darsie_timing.Gpu
module Stats = Darsie_timing.Stats

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pcstat unit behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_pcstat_counters () =
  let p = Obs.Pcstat.create ~n:4 in
  Obs.Pcstat.note_fetch p ~pc:0;
  Obs.Pcstat.note_issue p ~pc:0;
  Obs.Pcstat.note_skip p ~pc:1;
  Obs.Pcstat.note_skips p ~pc:1 2;
  Obs.Pcstat.note_skips p ~pc:99 5;
  (* out of range: ignored *)
  Obs.Pcstat.note_drop p ~pc:2;
  check_int "fetch" 1 (Obs.Pcstat.fetches p ~pc:0);
  check_int "issue" 1 (Obs.Pcstat.issues p ~pc:0);
  check_int "bulk skips accumulate" 3 (Obs.Pcstat.skips p ~pc:1);
  check_int "out-of-range skips dropped" 3 (Obs.Pcstat.total_skips p);
  check_int "drop" 1 (Obs.Pcstat.drops p ~pc:2)

let test_pcstat_charge_none_row () =
  let p = Obs.Pcstat.create ~n:2 in
  Obs.Pcstat.charge p ~pc:0 Obs.Attrib.Active;
  Obs.Pcstat.charge p ~pc:(-1) Obs.Attrib.Idle;
  Obs.Pcstat.charge p ~pc:7 Obs.Attrib.Idle;
  (* out of range also lands on the none-row *)
  check_int "row charge" 1 (Obs.Pcstat.charged p ~pc:0 Obs.Attrib.Active);
  check_int "none-row collects unattributable cycles" 2
    (Obs.Attrib.get (Obs.Pcstat.unattributed p) Obs.Attrib.Idle);
  check_int "bucket totals include the none-row" 3 (Obs.Pcstat.total_cycles p)

let test_pcstat_lat_buckets () =
  check_int "first bucket" 0 (Obs.Pcstat.lat_bucket_of 1);
  check_int "boundary is inclusive" 0 (Obs.Pcstat.lat_bucket_of 4);
  check_int "next bucket" 1 (Obs.Pcstat.lat_bucket_of 5);
  check_int "open-ended tail" (Obs.Pcstat.lat_buckets - 1)
    (Obs.Pcstat.lat_bucket_of 100_000);
  let p = Obs.Pcstat.create ~n:1 in
  Obs.Pcstat.note_mem_latency p ~pc:0 ~lat:10;
  Obs.Pcstat.note_mem_latency p ~pc:0 ~lat:30;
  check_int "count" 2 (Obs.Pcstat.mem_count p ~pc:0);
  check_int "max" 30 (Obs.Pcstat.mem_lat_max p ~pc:0);
  Alcotest.(check (float 1e-9)) "mean" 20.0 (Obs.Pcstat.mem_lat_mean p ~pc:0)

let test_merge_skip_telemetry () =
  let e hits = { Obs.Pcstat.empty_skip_entry with Obs.Pcstat.sk_hits = hits } in
  let merged =
    Obs.Pcstat.merge_skip_telemetry
      [ [ (3, e 1); (1, e 2) ]; [ (1, e 5); (7, e 1) ] ]
  in
  check_int "three distinct PCs" 3 (List.length merged);
  check_bool "sorted by PC" true
    (List.map fst merged = List.sort compare (List.map fst merged));
  check_int "same-PC entries merge" 7
    (Obs.Pcstat.((List.assoc 1 merged).sk_hits))

(* ------------------------------------------------------------------ *)
(* Conservation on real apps                                           *)
(* ------------------------------------------------------------------ *)

let mm = lazy (Suite.load_app Darsie_workloads.Matmul.workload)

let profiled machine =
  let r = Suite.run_app ~pcstat:true (Lazy.force mm) machine in
  r.Suite.gpu

(* Every machine: the per-PC table must reproduce the per-SM stall
   attribution bucket-by-bucket (enforced by check_attribution) and the
   occurrence counters must match the aggregate Stats. *)
let test_conservation_matmul () =
  List.iter
    (fun machine ->
      let g = profiled machine in
      let name = Suite.machine_name machine in
      (match Gpu.check_attribution g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e);
      let p = Option.get g.Gpu.pcstat in
      check_int (name ^ ": per-PC cycles = num_sms * cycles")
        (g.Gpu.cycles * Array.length g.Gpu.per_sm)
        (Obs.Pcstat.total_cycles p);
      check_int (name ^ ": issues") g.Gpu.stats.Stats.issued
        (Obs.Pcstat.total_issues p);
      check_int (name ^ ": skips") g.Gpu.stats.Stats.skipped_prefetch
        (Obs.Pcstat.total_skips p);
      check_int (name ^ ": drops") g.Gpu.stats.Stats.dropped_issue
        (Obs.Pcstat.total_drops p);
      check_int (name ^ ": fetches") g.Gpu.stats.Stats.fetched
        (Obs.Pcstat.total_fetches p))
    [ Suite.Base; Suite.Uv; Suite.Dac_ideal; Suite.Darsie ]

(* DARSIE's pre-fetch skips never pass through the SM's fetch stage; the
   profile learns them from skip-table telemetry, so telemetry hits must
   equal the skipped_prefetch counter exactly. *)
let test_darsie_telemetry_agrees () =
  let g = profiled Suite.Darsie in
  let hits =
    List.fold_left
      (fun acc (_, e) -> acc + e.Obs.Pcstat.sk_hits)
      0 g.Gpu.skip_telemetry
  in
  check_int "telemetry hits = skipped_prefetch"
    g.Gpu.stats.Stats.skipped_prefetch hits;
  check_bool "telemetry has entries" true (g.Gpu.skip_telemetry <> []);
  List.iter
    (fun (pc, e) ->
      check_bool
        (Printf.sprintf "pc %d allocs > 0 when hit" pc)
        true
        (e.Obs.Pcstat.sk_hits = 0 || e.Obs.Pcstat.sk_allocs > 0))
    g.Gpu.skip_telemetry

let test_profiling_non_interference () =
  let app = Lazy.force mm in
  let off = Suite.run_app app Suite.Darsie in
  let on = Suite.run_app ~pcstat:true app Suite.Darsie in
  check_int "same cycles with and without profiling"
    off.Suite.gpu.Gpu.cycles on.Suite.gpu.Gpu.cycles

(* ------------------------------------------------------------------ *)
(* Annotate renderer                                                   *)
(* ------------------------------------------------------------------ *)

let test_annotate_rows () =
  let g = profiled Suite.Darsie in
  let kernel = (Lazy.force mm).Suite.kinfo.Darsie_timing.Kinfo.kernel in
  let rows = Annotate.rows ~kernel ~machines:[ ("DARSIE", g) ] in
  check_int "one row per static instruction"
    (Array.length kernel.Darsie_isa.Kernel.insts)
    (List.length rows);
  let p = Option.get g.Gpu.pcstat in
  let row_sum =
    List.fold_left (fun acc (r : Annotate.row) -> acc +. r.Annotate.cycle_pct)
      0.0 rows
  in
  let un_pct =
    100.0
    *. float_of_int (Obs.Attrib.total (Obs.Pcstat.unattributed p))
    /. float_of_int (Obs.Pcstat.total_cycles p)
  in
  Alcotest.(check (float 0.01)) "cycle% sums to 100 with the none-row"
    100.0 (row_sum +. un_pct);
  List.iter
    (fun (r : Annotate.row) ->
      check_bool "skip% within [0, 100]" true
        (List.for_all (fun (_, s) -> s >= 0.0 && s <= 100.0) r.Annotate.skip_pcts))
    rows

let test_annotate_render () =
  let g = profiled Suite.Darsie in
  let kernel = (Lazy.force mm).Suite.kinfo.Darsie_timing.Kinfo.kernel in
  let text =
    Annotate.render ~top:3 ~kernel ~app_name:"MM"
      ~machines:[ ("DARSIE", g) ] ()
  in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "header names the app and machine" true
    (contains "darsie annotate: MM on DARSIE");
  check_bool "lists the disassembly" true (contains "fma.f32");
  check_bool "has the unattributed row" true (contains "<no instruction>");
  check_bool "has the hotspot summary" true (contains "hottest 3 instructions")

(* An unprofiled run must be rejected loudly, not rendered as zeros. *)
let test_annotate_requires_pcstat () =
  let r = Suite.run_app (Lazy.force mm) Suite.Darsie in
  let kernel = (Lazy.force mm).Suite.kinfo.Darsie_timing.Kinfo.kernel in
  Alcotest.check_raises "unprofiled run rejected"
    (Invalid_argument "Annotate: run was not profiled (pcstat = false)")
    (fun () ->
      ignore (Annotate.rows ~kernel ~machines:[ ("DARSIE", r.Suite.gpu) ]))

(* ------------------------------------------------------------------ *)
(* Metrics export with per_pc                                          *)
(* ------------------------------------------------------------------ *)

let test_metrics_per_pc () =
  let r = Suite.run_app ~pcstat:true (Lazy.force mm) Suite.Darsie in
  let doc = Metrics.of_run ~app:"MM" r in
  (match Metrics.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "profiled metrics rejected: %s" e);
  (* The validator must catch a tampered per_pc section. *)
  let module J = Obs.Json in
  let tampered =
    match doc with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | "per_pc", J.Obj pf ->
               ( "per_pc",
                 J.Obj
                   (List.map
                      (function
                        | "unattributed", _ ->
                          ("unattributed", J.Obj [ ("idle", J.Int 1) ])
                        | kv -> kv)
                      pf) )
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "metrics doc is not an object"
  in
  check_bool "tampered per_pc rejected" true
    (Result.is_error (Metrics.validate tampered));
  (* An unprofiled run exports per_pc = null and still validates. *)
  let plain = Suite.run_app (Lazy.force mm) Suite.Darsie in
  let plain_doc = Metrics.of_run ~app:"MM" plain in
  check_bool "per_pc is null when profiling off" true
    (J.member "per_pc" plain_doc = Some J.Null);
  check_bool "plain doc validates" true (Result.is_ok (Metrics.validate plain_doc))

(* ------------------------------------------------------------------ *)
(* Trendline store                                                     *)
(* ------------------------------------------------------------------ *)

let sample_record () =
  {
    Trendline.date = "2026-08-06";
    label = "test";
    wall_s = 4.5;
    repeats = 3;
    cycles_per_sec = 20000.0;
    gmeans = [ ("speedup_2d_darsie", 1.30); ("speedup_2d_dac", 1.11) ];
    per_app_ipc = [ ("MM", 3.1); ("LIB", 1.7) ];
    per_app_cycles = [ ("MM", 7000); ("LIB", 8600) ];
    per_app_coverage = [ ("MM", 0.92); ("LIB", 0.88) ];
    host_phases = [ ("sim.run", 3.8); ("trace.load", 0.4) ];
    cache_hit_rate = Some 0.5;
  }

let test_trendline_roundtrip () =
  let r = sample_record () in
  match Trendline.of_json (Trendline.to_json r) with
  | Ok r' ->
    check_bool "round-trips exactly" true (r = r');
    let path = Filename.temp_file "darsie_trend" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Trendline.write_file path r;
        match Trendline.read_file path with
        | Ok r'' -> check_bool "file round-trips" true (r = r'')
        | Error e -> Alcotest.failf "read_file: %s" e)
  | Error e -> Alcotest.failf "of_json: %s" e

let test_trendline_rejects_bad_schema () =
  let module J = Obs.Json in
  let doc =
    match Trendline.to_json (sample_record ()) with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | "schema_version", _ -> ("schema_version", J.Int 999)
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "record json is not an object"
  in
  check_bool "future schema rejected" true
    (Result.is_error (Trendline.of_json doc))

let test_measure_min_of_n () =
  (* Fake clock: each call advances by a scripted delta, so run k takes
     exactly deltas.(k) seconds and min-of-N must pick the smallest. *)
  let now = ref 0.0 in
  let deltas = [| 5.0; 2.0; 9.0 |] in
  let calls = ref 0 in
  let clock () = !now in
  let f () =
    now := !now +. deltas.(!calls mod 3);
    incr calls;
    !calls
  in
  let result, best = Trendline.measure ~clock ~repeats:3 f in
  check_int "ran three times" 3 result;
  Alcotest.(check (float 1e-9)) "kept the minimum" 2.0 best;
  Alcotest.check_raises "repeats < 1 rejected"
    (Invalid_argument "Trendline.measure: repeats < 1") (fun () ->
      ignore (Trendline.measure ~repeats:0 (fun () -> ())))

let test_regression_gate () =
  let base = sample_record () in
  let self = Trendline.compare_records ~baseline:base ~current:base () in
  check_bool "self-compare is clean" true (Trendline.regressions self = []);
  (* Inject a synthetic regression: MM got 5% slower (more cycles) and
     the 2D geomean dropped 5%. Both are far beyond the 0.5% gate. *)
  let worse =
    {
      base with
      Trendline.per_app_cycles = [ ("MM", 7350); ("LIB", 8600) ];
      gmeans = [ ("speedup_2d_darsie", 1.235); ("speedup_2d_dac", 1.11) ];
    }
  in
  let verdicts = Trendline.compare_records ~baseline:base ~current:worse () in
  let bad = Trendline.regressions verdicts in
  let names = List.map (fun (v : Trendline.verdict) -> v.Trendline.metric) bad in
  check_bool "cycles regression detected" true
    (List.mem "cycles.MM" names);
  check_bool "geomean regression detected" true
    (List.mem "gmean.speedup_2d_darsie" names);
  check_int "nothing else flagged" 2 (List.length bad);
  (* Wall-time wobble below its loose threshold must NOT flag. *)
  let wobbly = { base with Trendline.wall_s = base.Trendline.wall_s *. 1.2 } in
  check_bool "20% wall noise tolerated" true
    (Trendline.regressions
       (Trendline.compare_records ~baseline:base ~current:wobbly ())
    = []);
  (* An improvement must never flag. *)
  let better =
    { base with Trendline.per_app_cycles = [ ("MM", 6000); ("LIB", 8000) ] }
  in
  check_bool "improvements pass" true
    (Trendline.regressions
       (Trendline.compare_records ~baseline:base ~current:better ())
    = [])

let test_render_verdicts () =
  let base = sample_record () in
  let worse =
    { base with Trendline.per_app_cycles = [ ("MM", 8000); ("LIB", 8600) ] }
  in
  let text =
    Trendline.render_verdicts
      (Trendline.compare_records ~baseline:base ~current:worse ())
  in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions the metric" true (contains "cycles.MM");
  check_bool "flags the regression" true (contains "REGRESSED");
  check_string "first line is the header" "metric"
    (String.sub text 0 6)

let () =
  Alcotest.run "darsie_prof"
    [
      ( "pcstat",
        [
          Alcotest.test_case "occurrence counters" `Quick test_pcstat_counters;
          Alcotest.test_case "charge and none-row" `Quick
            test_pcstat_charge_none_row;
          Alcotest.test_case "latency buckets" `Quick test_pcstat_lat_buckets;
          Alcotest.test_case "telemetry merge" `Quick test_merge_skip_telemetry;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "per-PC charges reproduce attribution (MM)"
            `Slow test_conservation_matmul;
          Alcotest.test_case "DARSIE telemetry = skipped_prefetch" `Slow
            test_darsie_telemetry_agrees;
          Alcotest.test_case "profiling does not perturb timing" `Slow
            test_profiling_non_interference;
        ] );
      ( "annotate",
        [
          Alcotest.test_case "rows cover the kernel, cycle% sums to 100"
            `Slow test_annotate_rows;
          Alcotest.test_case "rendered listing" `Slow test_annotate_render;
          Alcotest.test_case "rejects unprofiled runs" `Slow
            test_annotate_requires_pcstat;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "per_pc section validates and is gated" `Slow
            test_metrics_per_pc;
        ] );
      ( "trendline",
        [
          Alcotest.test_case "json round-trip" `Quick test_trendline_roundtrip;
          Alcotest.test_case "schema gate" `Quick
            test_trendline_rejects_bad_schema;
          Alcotest.test_case "min-of-N measurement" `Quick
            test_measure_min_of_n;
          Alcotest.test_case "regression gate" `Quick test_regression_gate;
          Alcotest.test_case "verdict rendering" `Quick test_render_verdicts;
        ] );
    ]
