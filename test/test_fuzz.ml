(* Tests for the kernel fuzzer: PRNG splittability and determinism,
   typed Builder.finish_result errors (the fuzzer's well-formedness
   backstop), generator well-formedness and seed-determinism, the
   printer/parser round-trip property over generated kernels, the
   stacked differential on a clean sample, shrinker determinism and
   eval accounting, campaign schedule-independence, and the on-disk
   counterexample corpus (string round-trip plus replay of every
   checked-in witness). *)

module Sprng = Darsie_fuzz.Sprng
module Plan = Darsie_fuzz.Plan
module Gen = Darsie_fuzz.Gen
module Shrink = Darsie_fuzz.Shrink
module Differential = Darsie_fuzz.Differential
module Corpus = Darsie_fuzz.Corpus
module Campaign = Darsie_fuzz.Campaign
module Builder = Darsie_isa.Builder
module Parser = Darsie_isa.Parser
module Printer = Darsie_isa.Printer
module Instr = Darsie_isa.Instr

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Splittable PRNG *)

let test_sprng_determinism () =
  let draws t = List.init 32 (fun _ -> Sprng.bits32 t) in
  let a = draws (Sprng.for_index ~seed:42 ~index:7) in
  let b = draws (Sprng.for_index ~seed:42 ~index:7) in
  check_bool "same (seed, index) -> same stream" true (a = b);
  let c = draws (Sprng.for_index ~seed:42 ~index:8) in
  check_bool "adjacent index -> different stream" true (a <> c);
  let d = draws (Sprng.for_index ~seed:43 ~index:7) in
  check_bool "adjacent seed -> different stream" true (a <> d)

let test_sprng_split_independent () =
  let parent = Sprng.create 1 in
  let child = Sprng.split parent in
  (* the child was derived before these parent draws; draining the
     parent must not perturb the child *)
  let _ = List.init 100 (fun _ -> Sprng.bits32 parent) in
  let child_draws = List.init 16 (fun _ -> Sprng.bits32 child) in
  let parent2 = Sprng.create 1 in
  let child2 = Sprng.split parent2 in
  let child2_draws = List.init 16 (fun _ -> Sprng.bits32 child2) in
  check_bool "split stream independent of later parent draws" true
    (child_draws = child2_draws)

let test_sprng_ranges () =
  let t = Sprng.create 7 in
  for _ = 1 to 1000 do
    let v = Sprng.int t 10 in
    check_bool "int in [0,10)" true (v >= 0 && v < 10);
    let w = Sprng.in_range t 3 5 in
    check_bool "in_range in [3,5]" true (w >= 3 && w <= 5)
  done;
  for _ = 1 to 200 do
    check_bool "chance 100 always" true (Sprng.chance t 100);
    check_bool "chance 0 never" false (Sprng.chance t 0);
    check_int "weighted singleton" 9 (Sprng.weighted t [ (5, 9) ])
  done;
  check_bool "hash2 stateless" true (Sprng.hash2 3 4 = Sprng.hash2 3 4)

(* ------------------------------------------------------------------ *)
(* Builder typed errors (finish_result) *)

let test_builder_finish_result () =
  let expect name want b =
    match Builder.finish_result b with
    | Ok _ -> Alcotest.failf "%s: expected %s" name want
    | Error e ->
      check_bool
        (Printf.sprintf "%s: %s" name (Builder.error_message e))
        true
        (match (want, e) with
        | "empty", Builder.Empty_kernel -> true
        | "no-terminator", Builder.No_terminator _ -> true
        | "unplaced", Builder.Unplaced_label _ -> true
        | "unallocated-reg", Builder.Unallocated_register _ -> true
        | "unallocated-pred", Builder.Unallocated_predicate _ -> true
        | _ -> false)
  in
  expect "empty kernel" "empty" (Builder.create ~name:"e" ());
  (let b = Builder.create ~name:"fall" () in
   Builder.mov b (Builder.reg b) (Builder.O.i 1);
   expect "falls off the end" "no-terminator" b);
  (let b = Builder.create ~name:"dangling" () in
   Builder.bra b (Builder.fresh_label b);
   Builder.exit_ b;
   expect "unplaced label" "unplaced" b);
  (let b = Builder.create ~name:"reg" () in
   Builder.mov b 5 (Builder.O.i 1);
   Builder.exit_ b;
   expect "register never allocated" "unallocated-reg" b);
  (let b = Builder.create ~name:"pred" () in
   let r = Builder.reg b in
   Builder.emit b ~guard:(true, 2) (Instr.Un (Instr.Mov, r, Builder.O.i 1));
   Builder.exit_ b;
   expect "predicate never allocated" "unallocated-pred" b);
  (* a well-formed stream still finishes *)
  let b = Builder.create ~name:"ok" () in
  Builder.mov b (Builder.reg b) (Builder.O.i 1);
  Builder.exit_ b;
  check_bool "well-formed builds" true
    (Result.is_ok (Builder.finish_result b))

(* ------------------------------------------------------------------ *)
(* Generator *)

let gen_cases n =
  List.init n (fun index ->
      let style, plan = Gen.generate ~seed:11 ~index in
      match Plan.build plan with
      | Ok case -> (style, plan, case)
      | Error m -> Alcotest.failf "kernel %d (%s) failed to build: %s" index style m)

let test_gen_well_formed () =
  let cases = gen_cases 100 in
  List.iter
    (fun (_, plan, case) ->
      check_bool "non-empty plan" true (Plan.size plan > 0);
      check_bool "has instructions" true (Plan.instruction_count case > 0);
      let gx, gy = plan.Plan.grid and bx, by, bz = plan.Plan.block in
      check_bool "positive geometry" true
        (gx > 0 && gy > 0 && bx > 0 && by > 0 && bz > 0))
    cases;
  let seen = List.sort_uniq compare (List.map (fun (s, _, _) -> s) cases) in
  List.iter
    (fun style ->
      check_bool (Printf.sprintf "style %s exercised" style) true
        (List.mem style seen))
    Gen.styles

let test_gen_deterministic () =
  for index = 0 to 49 do
    let a = Gen.generate ~seed:5 ~index in
    let b = Gen.generate ~seed:5 ~index in
    check_bool "same (seed, index) -> same plan" true (a = b)
  done;
  let differs = ref 0 in
  for index = 0 to 49 do
    if Gen.generate ~seed:5 ~index <> Gen.generate ~seed:6 ~index then
      incr differs
  done;
  check_bool "different seed -> mostly different plans" true (!differs > 40)

(* ------------------------------------------------------------------ *)
(* Printer/parser round-trip over generated kernels *)

let test_roundtrip_generated () =
  List.iteri
    (fun index (_, _, case) ->
      let k = case.Plan.kernel in
      let printed = Printer.kernel_to_string k in
      let reparsed =
        try Parser.parse_kernel printed
        with e ->
          Alcotest.failf "kernel %d does not reparse (%s):\n%s" index
            (Printexc.to_string e) printed
      in
      check_string
        (Printf.sprintf "kernel %d reprints identically" index)
        printed
        (Printer.kernel_to_string reparsed))
    (gen_cases 200)

(* ------------------------------------------------------------------ *)
(* Stacked differential on a clean sample *)

let test_differential_clean () =
  List.iteri
    (fun index (style, _, case) ->
      let v = Differential.check_case case in
      (match v.Differential.v_failure with
      | None -> ()
      | Some f ->
        Alcotest.failf "kernel %d (%s) failed the stack: %s: %s" index style
          f.Differential.f_kind f.Differential.f_detail);
      check_bool "ran instructions" true (v.Differential.v_warp_insts > 0);
      check_bool "simulated cycles" true (v.Differential.v_cycles > 0))
    (gen_cases 30)

(* ------------------------------------------------------------------ *)
(* Shrinker *)

let test_shrink_accounting () =
  let _, plan = Gen.generate ~seed:3 ~index:1 in
  (* an always-true predicate shrinks to something minimal and must
     account every evaluation it spent doing so *)
  let shrunk, evals =
    Shrink.shrink ~predicate:(fun _ -> true) ~max_evals:2000 plan
  in
  check_bool "shrank" true (Plan.size shrunk < Plan.size plan);
  check_bool "evals accounted" true (evals > 0);
  check_bool "evals within budget" true (evals <= 2000);
  (* a never-true predicate keeps the plan but still counts its probes *)
  let kept, evals' =
    Shrink.shrink ~predicate:(fun _ -> false) ~max_evals:2000 plan
  in
  check_bool "nothing accepted -> plan unchanged" true (kept = plan);
  check_bool "rejected probes still accounted" true (evals' > 0)

let test_shrink_deterministic () =
  let _, plan = Gen.generate ~seed:3 ~index:2 in
  let predicate p = Plan.size p >= 2 in
  let a = Shrink.shrink ~predicate ~max_evals:500 plan in
  let b = Shrink.shrink ~predicate ~max_evals:500 plan in
  check_bool "same plan + predicate -> same result" true (a = b);
  let shrunk, _ = a in
  check_bool "respects the predicate" true (predicate shrunk)

(* ------------------------------------------------------------------ *)
(* Campaign: schedule-independence and replay *)

let campaign_config jobs =
  {
    Campaign.seed = 9;
    count = 20;
    jobs = Some jobs;
    max_shrink = 200;
    corpus_dir = None;
    inject = false;
    base_cfg = Darsie_timing.Config.default;
  }

let test_campaign_jobs_identical () =
  let r1 = Campaign.run (campaign_config 1) in
  let r3 = Campaign.run (campaign_config 3) in
  check_bool "campaign passes" true (Campaign.passed r1);
  check_int "exit code 0" 0 (Campaign.exit_code r1);
  check_string "render identical at -j 1 and -j 3" (Campaign.render r1)
    (Campaign.render r3);
  check_bool "json identical at -j 1 and -j 3" true
    (Campaign.to_json r1 = Campaign.to_json r3);
  match Darsie_harness.Metrics.validate_fuzz (Campaign.to_json r1) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fuzz report does not validate: %s" m

let test_campaign_replay () =
  let text, code = Campaign.replay ~seed:9 ~index:4 () in
  check_int "replay of a clean kernel exits 0" 0 code;
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "replay shows the verdict" true (contains "PASS" text);
  check_bool "replay shows the kernel" true (contains ".kernel" text)

(* ------------------------------------------------------------------ *)
(* Corpus *)

let test_corpus_roundtrip () =
  List.iter
    (fun (_, plan, case) ->
      ignore plan;
      let entry =
        {
          Corpus.e_case = case;
          e_kind = None;
          e_site = None;
          e_failure = "";
          e_replay = "darsie fuzz --seed 11 --replay 11:0";
        }
      in
      let s = Corpus.to_string entry in
      match Corpus.of_string s with
      | Error m -> Alcotest.failf "corpus entry does not reparse: %s" m
      | Ok entry' ->
        check_string "corpus text round-trips" s (Corpus.to_string entry');
        check_string "kernel preserved"
          (Printer.kernel_to_string case.Plan.kernel)
          (Printer.kernel_to_string entry'.Corpus.e_case.Plan.kernel))
    (gen_cases 5)

let test_corpus_replay_checked_in () =
  (* the committed witnesses: one shrunk, detected counterexample per
     injected fault kind (see `make fuzz-smoke`) *)
  let entries = Corpus.load_dir "corpus" in
  check_int "three committed witnesses" 3 (List.length entries);
  List.iter
    (fun (file, entry) ->
      match entry with
      | Error m -> Alcotest.failf "%s does not load: %s" file m
      | Ok e ->
        check_bool
          (Printf.sprintf "%s is an injected witness" file)
          true
          (e.Corpus.e_kind <> None && e.Corpus.e_site <> None))
    entries;
  let text, code = Campaign.replay_corpus ~dir:"corpus" () in
  if code <> 0 then Alcotest.failf "corpus replay failed:\n%s" text

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "sprng",
        [
          Alcotest.test_case "determinism" `Quick test_sprng_determinism;
          Alcotest.test_case "split independence" `Quick
            test_sprng_split_independent;
          Alcotest.test_case "ranges" `Quick test_sprng_ranges;
        ] );
      ( "builder",
        [
          Alcotest.test_case "finish_result typed errors" `Quick
            test_builder_finish_result;
        ] );
      ( "gen",
        [
          Alcotest.test_case "well-formed" `Quick test_gen_well_formed;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        ] );
      ( "roundtrip",
        [ Alcotest.test_case "print/parse 200 kernels" `Slow test_roundtrip_generated ] );
      ( "differential",
        [ Alcotest.test_case "clean sample" `Slow test_differential_clean ] );
      ( "shrink",
        [
          Alcotest.test_case "eval accounting" `Quick test_shrink_accounting;
          Alcotest.test_case "deterministic" `Quick test_shrink_deterministic;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs-independent" `Slow test_campaign_jobs_identical;
          Alcotest.test_case "replay" `Quick test_campaign_replay;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "replay checked-in witnesses" `Quick
            test_corpus_replay_checked_in;
        ] );
    ]
