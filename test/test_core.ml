(* Tests for DARSIE itself: the majority-path mask, the PC skip table with
   register versioning, and the fetch-stage skip engine end to end. *)

open Darsie_isa
open Darsie_timing
open Darsie_core

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Parser.parse_kernel

(* ------------------------------------------------------------------ *)
(* Majority mask                                                       *)
(* ------------------------------------------------------------------ *)

let test_majority () =
  let m = Majority.create ~warps:8 in
  check_int "all on path" 0xFF (Majority.mask m);
  check_bool "warp 3 on path" true (Majority.on_path m 3);
  Majority.drop m 3;
  check_bool "warp 3 off path" false (Majority.on_path m 3);
  check_int "mask updated" 0xF7 (Majority.mask m);
  check_bool "covers without 3" true (Majority.covers m 0xF7);
  check_bool "does not cover missing warp" false (Majority.covers m 0xF3);
  Majority.reset m;
  check_int "barrier resets" 0xFF (Majority.mask m)

(* ------------------------------------------------------------------ *)
(* Skip table                                                          *)
(* ------------------------------------------------------------------ *)

let test_skip_table_lifecycle () =
  let t = Skip_table.create ~max_entries:8 ~rename_regs:4 in
  check_int "freelist full" 4 (Skip_table.free_regs t);
  Skip_table.allocate t ~pc:10 ~occ:0 ~leader:2 ~mem_dep:false;
  check_int "one reg consumed" 3 (Skip_table.free_regs t);
  check_int "one entry" 1 (Skip_table.live_entries t);
  (match Skip_table.find t ~pc:10 ~occ:0 with
  | Some i ->
    check_int "leader recorded" 2 i.Skip_table.leader;
    check_bool "leader already passed" true (i.Skip_table.done_mask = 0b100);
    check_bool "not written back yet" false i.Skip_table.leader_wb
  | None -> Alcotest.fail "instance missing");
  (* followers pass; freeing waits for LeaderWB *)
  Skip_table.mark_passed t ~pc:10 ~occ:0 ~warp:0 ~majority:0b111;
  Skip_table.mark_passed t ~pc:10 ~occ:0 ~warp:1 ~majority:0b111;
  check_int "still live without WB" 1 (Skip_table.live_instances t);
  Skip_table.mark_writeback t ~pc:10 ~occ:0 ~majority:0b111;
  check_int "freed after WB + all passed" 0 (Skip_table.live_instances t);
  check_int "reg returned" 4 (Skip_table.free_regs t)

let test_skip_table_versions () =
  let t = Skip_table.create ~max_entries:8 ~rename_regs:4 in
  (* two loop iterations of the same PC live simultaneously *)
  Skip_table.allocate t ~pc:5 ~occ:0 ~leader:0 ~mem_dep:false;
  Skip_table.allocate t ~pc:5 ~occ:1 ~leader:0 ~mem_dep:false;
  check_int "one entry, two versions" 1 (Skip_table.live_entries t);
  check_int "two instances" 2 (Skip_table.live_instances t);
  check_bool "distinct instances" true
    (Skip_table.find t ~pc:5 ~occ:0 != Skip_table.find t ~pc:5 ~occ:1);
  Alcotest.check_raises "duplicate version rejected"
    (Invalid_argument "Skip_table.allocate: instance already live") (fun () ->
      Skip_table.allocate t ~pc:5 ~occ:0 ~leader:1 ~mem_dep:false)

let test_skip_table_capacity () =
  let t = Skip_table.create ~max_entries:2 ~rename_regs:8 in
  Skip_table.allocate t ~pc:0 ~occ:0 ~leader:0 ~mem_dep:false;
  Skip_table.allocate t ~pc:1 ~occ:0 ~leader:0 ~mem_dep:false;
  check_bool "third PC refused" false (Skip_table.can_allocate t ~pc:2);
  check_bool "existing PC still ok" true (Skip_table.can_allocate t ~pc:1);
  let t2 = Skip_table.create ~max_entries:8 ~rename_regs:1 in
  Skip_table.allocate t2 ~pc:0 ~occ:0 ~leader:0 ~mem_dep:false;
  check_bool "freelist exhausted" false (Skip_table.can_allocate t2 ~pc:1);
  Alcotest.check_raises "allocate past capacity"
    (Invalid_argument "Skip_table.allocate: table or freelist exhausted")
    (fun () -> Skip_table.allocate t2 ~pc:1 ~occ:0 ~leader:0 ~mem_dep:false)

let test_skip_table_flush_loads () =
  let t = Skip_table.create ~max_entries:8 ~rename_regs:8 in
  Skip_table.allocate t ~pc:0 ~occ:0 ~leader:0 ~mem_dep:true;
  Skip_table.allocate t ~pc:1 ~occ:0 ~leader:0 ~mem_dep:false;
  Skip_table.flush_loads t ~kind:`Store;
  check_bool "load entry gone" true (Skip_table.find t ~pc:0 ~occ:0 = None);
  check_bool "alu entry kept" true (Skip_table.find t ~pc:1 ~occ:0 <> None);
  check_int "load's register returned" 7 (Skip_table.free_regs t);
  Skip_table.flush_all t;
  check_int "flush_all empties" 0 (Skip_table.live_entries t);
  check_int "flush_all returns regs" 8 (Skip_table.free_regs t)

let test_skip_table_majority_shrink () =
  let t = Skip_table.create ~max_entries:8 ~rename_regs:8 in
  Skip_table.allocate t ~pc:0 ~occ:0 ~leader:0 ~mem_dep:false;
  Skip_table.mark_writeback t ~pc:0 ~occ:0 ~majority:0b11;
  (* warp 1 never passes, but it leaves the majority *)
  check_int "still held for warp 1" 1 (Skip_table.live_instances t);
  Skip_table.recheck t ~majority:0b01;
  check_int "freed once majority shrinks" 0 (Skip_table.live_instances t)

(* qcheck: the freelist invariant holds under random operation sequences *)
let qcheck_skip_table =
  let op_gen =
    QCheck.Gen.(
      map3
        (fun a b c -> (a mod 6, b mod 4, c mod 3))
        (int_bound 1000) (int_bound 1000) (int_bound 1000))
  in
  QCheck.Test.make ~name:"skip-table freelist conservation" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.return 40) op_gen))
    (fun ops ->
      let t = Skip_table.create ~max_entries:4 ~rename_regs:6 in
      List.iter
        (fun (kind, pc, occ) ->
          match kind with
          | 0 ->
            if
              Skip_table.can_allocate t ~pc
              && Skip_table.find t ~pc ~occ = None
            then Skip_table.allocate t ~pc ~occ ~leader:0 ~mem_dep:(pc = 0)
          | 1 -> Skip_table.mark_writeback t ~pc ~occ ~majority:0b11
          | 2 -> Skip_table.mark_passed t ~pc ~occ ~warp:1 ~majority:0b11
          | 3 -> Skip_table.flush_loads t ~kind:`Store
          | 4 -> Skip_table.recheck t ~majority:0b01
          | _ -> Skip_table.flush_all t)
        ops;
      Skip_table.free_regs t + Skip_table.live_instances t = 6
      && Skip_table.free_regs t >= 0)

(* ------------------------------------------------------------------ *)
(* DARSIE engine end to end                                            *)
(* ------------------------------------------------------------------ *)

let run_darsie ?(options = Darsie_engine.default_options)
    ?(cfg = Config.default) ?(grid = Kernel.dim3 2)
    ?(block = Kernel.dim3 16 ~y:16) ktext params =
  let k = parse ktext in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.map
      (fun need ->
        if need then begin
          let b = Darsie_emu.Memory.alloc mem 65536 in
          Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
          b
        end
        else 0)
      params
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  let kinfo = Kinfo.make ~warp_size:32 launch in
  let trace = Darsie_trace.Record.generate mem launch in
  let base = Gpu.run_exn ~cfg Engine.base_factory kinfo trace in
  let darsie = Gpu.run_exn ~cfg (Darsie_engine.factory ~options ()) kinfo trace in
  (base, darsie)

let redundant_kernel =
  {|
.kernel red
.params 2
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  add.u32 %r3, %r2, 7;
  mad.lo.u32 %r4, %tid.y, %ntid.x, %tid.x;
  shl.b32 %r4, %r4, 2;
  add.u32 %r4, %r4, %param1;
  st.global.u32 [%r4+0], %r3;
  exit;
|}

let test_darsie_skips_2d () =
  let base, darsie = run_darsie redundant_kernel [| true; true |] in
  (* 4 skippable instructions (mul, add, ld, add) x 8 warps/TB: 7 of 8
     warps skip each; 2 TBs *)
  check_int "skipped = followers x redundant" (4 * 7 * 2)
    darsie.Gpu.stats.Stats.skipped_prefetch;
  check_int "issued + skipped conserve the stream"
    base.Gpu.stats.Stats.issued
    (darsie.Gpu.stats.Stats.issued + darsie.Gpu.stats.Stats.skipped_prefetch);
  (* On a kernel this tiny the follower LeaderWB waits can outweigh the
     fetch savings; only require that the overhead stays bounded. Real
     speedups are asserted on the full workloads in test_workloads. *)
  check_bool "darsie overhead bounded" true
    (darsie.Gpu.cycles <= base.Gpu.cycles * 13 / 10)

let test_darsie_no_skips_1d () =
  let _, darsie =
    run_darsie ~block:(Kernel.dim3 256) redundant_kernel [| true; true |]
  in
  (* only the (nonexistent) uniform ops could be skipped: the tid.x chain
     demotes to vector in 1D *)
  check_int "nothing skipped in 1D" 0 darsie.Gpu.stats.Stats.skipped_prefetch

let test_darsie_uniform_skipped_in_1d () =
  let k =
    {|
.kernel uni
.params 2
  mov.u32 %r0, %ctaid.x;
  mul.lo.u32 %r1, %r0, 5;
  add.u32 %r2, %r1, %param0;
  mad.lo.u32 %r3, %ctaid.x, %ntid.x, %tid.x;
  shl.b32 %r3, %r3, 2;
  add.u32 %r3, %r3, %param1;
  st.global.u32 [%r3+0], %r2;
  exit;
|}
  in
  let _, darsie = run_darsie ~block:(Kernel.dim3 256) k [| true; true |] in
  (* uniform redundancy survives 1D: mov, mul, add x 7 followers x 2 TBs *)
  check_int "uniform ops skipped" (3 * 7 * 2)
    darsie.Gpu.stats.Stats.skipped_prefetch

let test_darsie_store_flush () =
  (* a redundant load in a loop after a store: entries flushed each
     iteration, so DARSIE-IGNORE-STORE skips strictly more *)
  let k =
    {|
.kernel sf
.params 3
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  mad.lo.u32 %r5, %tid.y, %ntid.x, %tid.x;
  shl.b32 %r5, %r5, 2;
  add.u32 %r5, %r5, %param1;
  mov.u32 %r4, 0;
top:
  ld.global.u32 %r2, [%r1+0];
  st.global.u32 [%r5+0], %r2;
  add.u32 %r4, %r4, 1;
  setp.lt.s32 %p0, %r4, 8;
@%p0 bra top;
  exit;
|}
  in
  let _, strict = run_darsie k [| true; true; false |] in
  let _, loose =
    run_darsie
      ~options:{ Darsie_engine.ignore_store = true; no_cf_sync = false }
      k [| true; true; false |]
  in
  check_bool "stores curtail load skipping" true
    (strict.Gpu.stats.Stats.skipped_prefetch
    < loose.Gpu.stats.Stats.skipped_prefetch)

let test_darsie_divergent_warp_excluded () =
  (* warps whose threads diverge (partial mask) leave the majority path *)
  let k =
    {|
.kernel div
.params 1
  and.b32 %r4, %tid.x, 1;
  setp.eq.s32 %p0, %r4, 0;
@!%p0 bra skip;
  mov.u32 %r1, 1;
skip:
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r2, %r0, %param0;
  ld.global.u32 %r3, [%r2+0];
  exit;
|}
  in
  let _, darsie = run_darsie k [| true |] in
  (* The pre-branch `and` is skipped normally (7 followers x 2 TBs = 14);
     then every warp splits on odd/even lanes, leaves the majority path,
     and the post-reconvergence CR chain (mul/add/ld) is NOT skipped even
     though its mask is full again. *)
  check_int "only the pre-divergence op is skipped" 14
    darsie.Gpu.stats.Stats.skipped_prefetch

let test_darsie_loop_versions () =
  (* redundant instruction inside a loop: one version per iteration, all
     skipped by followers *)
  let k =
    {|
.kernel loop
.params 2
  mov.u32 %r0, 0;
  mov.u32 %r3, 0;
top:
  mul.lo.u32 %r1, %tid.x, 4;
  add.u32 %r2, %r1, %param0;
  add.u32 %r3, %r3, %r2;
  add.u32 %r0, %r0, 1;
  setp.lt.s32 %p0, %r0, 5;
@%p0 bra top;
  exit;
|}
  in
  let base, darsie = run_darsie k [| true; false |] in
  (* skippable per warp-trace: mov r0, mov r3 are uniform (2); per
     iteration mul+add r2 are CR (2x5); the loop bookkeeping add r0 and
     the accumulator add r3 mix CR+uniform... count conservation instead *)
  check_int "stream conserved" base.Gpu.stats.Stats.issued
    (darsie.Gpu.stats.Stats.issued + darsie.Gpu.stats.Stats.skipped_prefetch);
  check_bool "loop versions skipped" true
    (darsie.Gpu.stats.Stats.skipped_prefetch >= 2 * 5 * 7 * 2)

let test_darsie_no_cf_sync_skips_at_least_as_much () =
  let base, strict = run_darsie redundant_kernel [| true; true |] in
  let _, ideal =
    run_darsie
      ~options:{ Darsie_engine.ignore_store = false; no_cf_sync = true }
      redundant_kernel [| true; true |]
  in
  ignore base;
  (* Leader election is greedy and online, so racing warps can shift which
     warp executes an instance; allow a tiny shortfall but require the
     idealization to stay within 5% of strict DARSIE's skip count. *)
  check_bool "idealized sync skips about as much" true
    (ideal.Gpu.stats.Stats.skipped_prefetch * 100
    >= strict.Gpu.stats.Stats.skipped_prefetch * 95);
  check_int "no stalls in idealized mode" 0
    ideal.Gpu.stats.Stats.darsie_sync_stalls

let test_darsie_counters () =
  let _, darsie = run_darsie redundant_kernel [| true; true |] in
  check_bool "probes recorded" true (darsie.Gpu.stats.Stats.skip_table_probes > 0);
  check_bool "renames recorded" true (darsie.Gpu.stats.Stats.rename_accesses > 0);
  check_bool "coalescer used" true (darsie.Gpu.stats.Stats.coalescer_probes > 0)

let test_engine_names () =
  check_bool "names" true
    (Darsie_engine.name_of Darsie_engine.default_options = "DARSIE"
    && Darsie_engine.name_of
         { Darsie_engine.ignore_store = true; no_cf_sync = false }
       = "DARSIE-IGNORE-STORE"
    && Darsie_engine.name_of
         { Darsie_engine.ignore_store = false; no_cf_sync = true }
       = "DARSIE-NO-CF-SYNC")

let () =
  Alcotest.run "darsie_core"
    [
      ("majority", [ Alcotest.test_case "mask ops" `Quick test_majority ]);
      ( "skip-table",
        [
          Alcotest.test_case "lifecycle" `Quick test_skip_table_lifecycle;
          Alcotest.test_case "versions" `Quick test_skip_table_versions;
          Alcotest.test_case "capacity" `Quick test_skip_table_capacity;
          Alcotest.test_case "flush loads" `Quick test_skip_table_flush_loads;
          Alcotest.test_case "majority shrink" `Quick
            test_skip_table_majority_shrink;
          QCheck_alcotest.to_alcotest qcheck_skip_table;
        ] );
      ( "engine",
        [
          Alcotest.test_case "skips in 2D" `Quick test_darsie_skips_2d;
          Alcotest.test_case "demotes in 1D" `Quick test_darsie_no_skips_1d;
          Alcotest.test_case "uniform in 1D" `Quick
            test_darsie_uniform_skipped_in_1d;
          Alcotest.test_case "store flush" `Quick test_darsie_store_flush;
          Alcotest.test_case "divergence excluded" `Quick
            test_darsie_divergent_warp_excluded;
          Alcotest.test_case "loop versions" `Quick test_darsie_loop_versions;
          Alcotest.test_case "no-cf-sync" `Quick
            test_darsie_no_cf_sync_skips_at_least_as_much;
          Alcotest.test_case "counters" `Quick test_darsie_counters;
          Alcotest.test_case "names" `Quick test_engine_names;
        ] );
    ]
