(* Tests for the observability layer: null-sink non-interference, the
   interval sampler's boundary math, the stall-attribution invariant on
   real Table-1 apps, and the exported JSON schema (round-trip through
   our own parser plus [Metrics.validate]). *)

open Darsie_harness
module Obs = Darsie_obs

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sinks and the recorder                                              *)
(* ------------------------------------------------------------------ *)

let test_null_sink () =
  check_bool "null sink disabled" false (Obs.Sink.enabled Obs.Sink.null);
  (* Emitting into the null sink is a no-op, not an error. *)
  Obs.Sink.emit Obs.Sink.null
    { Obs.Event.cycle = 0; sm = 0; warp = 0; kind = Obs.Event.Fetch };
  let r = Obs.Recorder.create () in
  check_bool "recorder sink enabled" true (Obs.Sink.enabled (Obs.Recorder.sink r));
  check_int "fresh recorder is empty" 0 (Obs.Recorder.length r)

let test_recorder_cap () =
  let r = Obs.Recorder.create ~cap:3 () in
  let s = Obs.Recorder.sink r in
  for c = 0 to 9 do
    Obs.Sink.emit s { Obs.Event.cycle = c; sm = 0; warp = 0; kind = Obs.Event.Issue }
  done;
  check_int "stores up to cap" 3 (Obs.Recorder.length r);
  check_int "counts the overflow" 7 (Obs.Recorder.dropped r);
  check_int "count by kind" 3 (Obs.Recorder.count r Obs.Event.Issue);
  check_int "count of absent kind" 0 (Obs.Recorder.count r Obs.Event.Fetch)

(* The null sink must not perturb the simulation: same cycle count with
   tracing off and with a recorder attached. *)
let test_non_interference () =
  let app = Suite.load_app Darsie_workloads.Matmul.workload in
  let off = Suite.run_app app Suite.Darsie in
  let r = Obs.Recorder.create () in
  let on =
    Suite.run_app ~sink:(Obs.Recorder.sink r) ~sample_interval:512 app
      Suite.Darsie
  in
  check_int "same cycles with and without tracing"
    off.Suite.gpu.Darsie_timing.Gpu.cycles on.Suite.gpu.Darsie_timing.Gpu.cycles;
  check_bool "tracing recorded events" true (Obs.Recorder.length r > 0);
  check_int "issue events match the issued counter"
    on.Suite.gpu.Darsie_timing.Gpu.stats.Darsie_timing.Stats.issued
    (Obs.Recorder.count r Obs.Event.Issue)

(* ------------------------------------------------------------------ *)
(* Interval sampler                                                    *)
(* ------------------------------------------------------------------ *)

let test_series_boundaries () =
  let s = Obs.Series.create ~interval:4 ~names:[ "a"; "b" ] in
  check_bool "cycle 0 is not a boundary" false (Obs.Series.boundary s ~cycle:0);
  check_bool "cycle 3 is not a boundary" false (Obs.Series.boundary s ~cycle:3);
  check_bool "cycle 4 is a boundary" true (Obs.Series.boundary s ~cycle:4);
  check_bool "cycle 8 is a boundary" true (Obs.Series.boundary s ~cycle:8);
  check_int "interval accessor" 4 (Obs.Series.interval s);
  Alcotest.(check (list string)) "names accessor" [ "a"; "b" ] (Obs.Series.names s)

let test_series_deltas () =
  let s = Obs.Series.create ~interval:4 ~names:[ "a"; "b" ] in
  Obs.Series.record s ~cycle:4 [| 10; 1 |];
  Obs.Series.record s ~cycle:8 [| 25; 1 |];
  (* Final flush on a partial interval... *)
  Obs.Series.record s ~cycle:10 [| 30; 2 |];
  (* ...and a duplicate flush landing exactly on the last cycle is ignored. *)
  Obs.Series.record s ~cycle:10 [| 30; 2 |];
  check_int "three points" 3 (Obs.Series.num_points s);
  let pts = Obs.Series.points s in
  let p1 = List.nth pts 0 and p2 = List.nth pts 1 and p3 = List.nth pts 2 in
  check_int "first point cycle" 4 p1.Obs.Series.cycle;
  check_int "first delta = cumulative" 10 p1.Obs.Series.values.(0);
  check_int "second delta" 15 p2.Obs.Series.values.(0);
  check_int "second delta (flat counter)" 0 p2.Obs.Series.values.(1);
  check_int "partial-interval delta" 5 p3.Obs.Series.values.(0);
  check_int "partial-interval delta b" 1 p3.Obs.Series.values.(1);
  check_bool "non-monotonic cycle raises" true
    (match Obs.Series.record s ~cycle:9 [| 99; 9 |] with
    | exception Invalid_argument _ -> true
    | () -> false);
  check_bool "width mismatch raises" true
    (match Obs.Series.record s ~cycle:12 [| 1 |] with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Stall-cycle attribution                                             *)
(* ------------------------------------------------------------------ *)

let check_attribution_sums name (r : Suite.run) =
  let gpu = r.Suite.gpu in
  let open Darsie_timing in
  Array.iteri
    (fun i a ->
      check_int
        (Printf.sprintf "%s: SM %d buckets sum to cycles" name i)
        gpu.Gpu.cycles (Obs.Attrib.total a))
    gpu.Gpu.per_sm_attribution;
  check_int
    (Printf.sprintf "%s: aggregate = num_sms * cycles" name)
    (Array.length gpu.Gpu.per_sm * gpu.Gpu.cycles)
    (Obs.Attrib.total gpu.Gpu.attribution);
  match Gpu.check_attribution gpu with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: check_attribution: %s" name msg

let test_attribution_sums () =
  List.iter
    (fun w ->
      let app = Suite.load_app w in
      List.iter
        (fun machine ->
          let r = Suite.run_app app machine in
          let name =
            Printf.sprintf "%s/%s" w.Darsie_workloads.Workload.abbr
              (Suite.machine_name machine)
          in
          check_attribution_sums name r)
        [ Suite.Base; Suite.Darsie ])
    [ Darsie_workloads.Matmul.workload; Darsie_workloads.Hotspot.workload ]

let test_attrib_arith () =
  let a = Obs.Attrib.create () in
  Obs.Attrib.bump a Obs.Attrib.Active;
  Obs.Attrib.bump a Obs.Attrib.Active;
  Obs.Attrib.bump a Obs.Attrib.Idle;
  check_int "bump/get" 2 (Obs.Attrib.get a Obs.Attrib.Active);
  check_int "total" 3 (Obs.Attrib.total a);
  let b = Obs.Attrib.create () in
  Obs.Attrib.bump b Obs.Attrib.Barrier;
  Obs.Attrib.add a b;
  check_int "add accumulates" 4 (Obs.Attrib.total a);
  check_int "assoc covers every bucket"
    (List.length Obs.Attrib.all_buckets)
    (List.length (Obs.Attrib.to_assoc a))

(* ------------------------------------------------------------------ *)
(* Schema: JSON round-trip and document validation                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("i", Obs.Json.Int 42);
        ("f", Obs.Json.Float 1.5);
        ("s", Obs.Json.String "a \"quoted\" \\ line\nnext");
        ("l", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("o", Obs.Json.Obj [ ("nested", Obs.Json.Int (-7)) ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc' ->
    check_bool "compact round-trip preserves the tree" true (doc = doc');
    (match Obs.Json.of_string (Obs.Json.pretty_to_string doc) with
    | Error e -> Alcotest.failf "pretty reparse failed: %s" e
    | Ok doc'' -> check_bool "pretty round-trip too" true (doc = doc''))

let test_metrics_document () =
  let app = Suite.load_app Darsie_workloads.Matmul.workload in
  let r = Suite.run_app ~sample_interval:512 app Suite.Darsie in
  let doc = Metrics.of_run ~app:"MM" r in
  (match Metrics.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh document invalid: %s" e);
  (* The golden round-trip: serialized text reparses and still validates. *)
  (match Metrics.validate_string (Obs.Json.to_string doc) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "round-tripped document invalid: %s" e);
  check_bool "schema_version present" true
    (Obs.Json.member "schema_version" doc
    = Some (Obs.Json.Int Metrics.schema_version));
  (* Tampering with the attribution must fail validation. *)
  let tampered =
    match doc with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (function
             | "cycles", Obs.Json.Int c -> ("cycles", Obs.Json.Int (c + 1))
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "document is not an object"
  in
  check_bool "tampered cycles fail validation" true
    (match Metrics.validate tampered with Error _ -> true | Ok () -> false)

(* When DARSIE_METRICS_FILE points at an exported file (make
   profile-smoke does this), validate it; otherwise skip. *)
let test_metrics_file () =
  match Sys.getenv_opt "DARSIE_METRICS_FILE" with
  | None | Some "" -> Alcotest.skip ()
  | Some path ->
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match Metrics.validate_string s with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: %s" path e)

let test_chrome_trace () =
  let app = Suite.load_app Darsie_workloads.Matmul.workload in
  let r = Obs.Recorder.create () in
  let run =
    Suite.run_app ~sink:(Obs.Recorder.sink r) ~sample_interval:512 app
      Suite.Darsie
  in
  let trace =
    Obs.Export.chrome_trace ~recorder:r
      ~series:run.Suite.gpu.Darsie_timing.Gpu.series ~name:"MM/DARSIE" ()
  in
  match Obs.Json.of_string (Obs.Json.to_string trace) with
  | Error e -> Alcotest.failf "trace reparse failed: %s" e
  | Ok doc ->
    (match Obs.Json.member "traceEvents" doc with
    | Some (Obs.Json.List evs) ->
      check_bool "trace has events" true (List.length evs > 0);
      let ok_event = function
        | Obs.Json.Obj fields ->
          List.mem_assoc "ph" fields && List.mem_assoc "pid" fields
        | _ -> false
      in
      check_bool "every event has ph and pid" true (List.for_all ok_event evs)
    | _ -> Alcotest.fail "traceEvents missing or not a list")

let () =
  Alcotest.run "darsie_obs"
    [
      ( "sink",
        [
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "recorder cap" `Quick test_recorder_cap;
          Alcotest.test_case "non-interference" `Quick test_non_interference;
        ] );
      ( "series",
        [
          Alcotest.test_case "boundaries" `Quick test_series_boundaries;
          Alcotest.test_case "deltas" `Quick test_series_deltas;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "arithmetic" `Quick test_attrib_arith;
          Alcotest.test_case "sums on MM and HS" `Quick test_attribution_sums;
        ] );
      ( "schema",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "metrics document" `Quick test_metrics_document;
          Alcotest.test_case "exported file" `Quick test_metrics_file;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
    ]
