(* Tests for the UV and DAC-IDEAL baseline engines (paper §5). *)

open Darsie_isa
open Darsie_timing

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let run_machine factory ?(grid = Kernel.dim3 2) ?(block = Kernel.dim3 16 ~y:16)
    ktext params =
  let k = Parser.parse_kernel ktext in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.map
      (fun need ->
        if need then begin
          let b = Darsie_emu.Memory.alloc mem 65536 in
          Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
          b
        end
        else 0)
      params
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  let kinfo = Kinfo.make ~warp_size:32 launch in
  let trace = Darsie_trace.Record.generate mem launch in
  let base = Gpu.run_exn Engine.base_factory kinfo trace in
  let r = Gpu.run_exn factory kinfo trace in
  (base, r)

let uniform_kernel =
  {|
.kernel u
.params 2
  mov.u32 %r0, %ctaid.x;
  mul.lo.u32 %r1, %r0, 3;
  add.u32 %r2, %r1, %param0;
  ld.global.u32 %r3, [%param0+0];
  mad.lo.u32 %r4, %tid.y, %ntid.x, %tid.x;
  shl.b32 %r4, %r4, 2;
  add.u32 %r4, %r4, %param1;
  st.global.u32 [%r4+0], %r2;
  exit;
|}

(* ------------------------------------------------------------------ *)
(* UV                                                                  *)
(* ------------------------------------------------------------------ *)

let test_uv_drops_uniform () =
  let base, uv = run_machine Darsie_baselines.Uv.factory uniform_kernel [| true; true |] in
  (* Up to 3 uniform ALU ops (mov, mul, add) x 7 followers x 2 TBs can be
     dropped; warps that issue before the first writeback miss the reuse
     buffer (the opportunistic behaviour that keeps UV's gains small). The
     uniform LOAD is never dropped by UV. *)
  check_bool "drops bounded by uniform instances" true
    (uv.Gpu.stats.Stats.dropped_issue <= 3 * 7 * 2);
  check_int "stream conserved" base.Gpu.stats.Stats.issued
    (uv.Gpu.stats.Stats.issued + uv.Gpu.stats.Stats.dropped_issue);
  (* the defining property: UV still fetches everything *)
  check_int "fetches unchanged" base.Gpu.stats.Stats.fetched
    uv.Gpu.stats.Stats.fetched;
  check_int "nothing skipped pre-fetch" 0 uv.Gpu.stats.Stats.skipped_prefetch

let test_uv_reuse_buffer_miss () =
  (* back-to-back dependent uniform ops: the second warp can only reuse
     after the first's writeback; with a single warp per TB nothing is
     ever dropped *)
  let _, uv =
    run_machine Darsie_baselines.Uv.factory ~block:(Kernel.dim3 32)
      uniform_kernel [| true; true |]
  in
  check_int "single warp drops nothing" 0 uv.Gpu.stats.Stats.dropped_issue

let test_uv_affine_untouched () =
  let k =
    {|
.kernel aff
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  exit;
|}
  in
  let _, uv = run_machine Darsie_baselines.Uv.factory k [| true |] in
  check_int "UV cannot touch affine redundancy" 0
    uv.Gpu.stats.Stats.dropped_issue

(* ------------------------------------------------------------------ *)
(* DAC-IDEAL                                                           *)
(* ------------------------------------------------------------------ *)

let test_dac_removes_affine_prefetch () =
  let k =
    {|
.kernel aff
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  exit;
|}
  in
  let base, dac = run_machine Darsie_baselines.Dac_ideal.factory k [| true |] in
  (* mul and add removed for every warp instance; the load stays *)
  check_int "affine ALU removed" (2 * 8 * 2) dac.Gpu.stats.Stats.skipped_prefetch;
  check_int "loads and exit still issued" (2 * 8 * 2)
    dac.Gpu.stats.Stats.issued;
  check_bool "fetches reduced" true
    (dac.Gpu.stats.Stats.fetched < base.Gpu.stats.Stats.fetched)

let test_dac_removes_1d_affine () =
  (* the idealized DAC removes affine work even in 1D blocks where it is
     not redundant — DARSIE's demotion does not apply to it *)
  let k =
    {|
.kernel aff1d
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  exit;
|}
  in
  let _, dac =
    run_machine Darsie_baselines.Dac_ideal.factory ~block:(Kernel.dim3 256) k
      [| true |]
  in
  check_int "1D affine removed too" (2 * 8 * 2)
    dac.Gpu.stats.Stats.skipped_prefetch

let test_dac_keeps_unstructured () =
  (* a value loaded from memory and reused: unstructured, DAC keeps it *)
  let k =
    {|
.kernel unstr
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  add.u32 %r3, %r2, 1;
  mul.lo.u32 %r4, %r3, %r3;
  exit;
|}
  in
  let _, dac = run_machine Darsie_baselines.Dac_ideal.factory k [| true |] in
  (* only the 2 affine address ops removed; the data-dependent adds/muls
     stay *)
  check_int "unstructured chain kept" (2 * 8 * 2)
    dac.Gpu.stats.Stats.skipped_prefetch

let test_dac_zero_sync_cost () =
  let _, dac =
    run_machine Darsie_baselines.Dac_ideal.factory uniform_kernel
      [| true; true |]
  in
  check_int "no stalls" 0 dac.Gpu.stats.Stats.darsie_sync_stalls

let test_tb_ideal_bound () =
  let k =
    {|
.kernel aff
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  exit;
|}
  in
  let base, ideal = run_machine Darsie_baselines.Tb_ideal.factory k [| true |] in
  (* warp 0 of each TB executes the redundant chain; 7 followers skip all
     three (including the load, which DAC cannot remove) *)
  check_int "followers removed" (3 * 7 * 2) ideal.Gpu.stats.Stats.skipped_prefetch;
  check_int "stream conserved" base.Gpu.stats.Stats.issued
    (ideal.Gpu.stats.Stats.issued + ideal.Gpu.stats.Stats.skipped_prefetch);
  check_int "zero sync cost" 0 ideal.Gpu.stats.Stats.darsie_sync_stalls;
  check_bool "ideal at least as fast as base" true
    (ideal.Gpu.cycles <= base.Gpu.cycles)

let test_tb_ideal_dominates_darsie_skips () =
  let k =
    {|
.kernel chain
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  add.u32 %r3, %r2, 7;
  xor.b32 %r4, %r3, %r0;
  exit;
|}
  in
  let _, ideal = run_machine Darsie_baselines.Tb_ideal.factory k [| true |] in
  let _, darsie =
    run_machine (Darsie_core.Darsie_engine.factory ()) k [| true |]
  in
  check_bool "ideal skips at least as much as DARSIE" true
    (ideal.Gpu.stats.Stats.skipped_prefetch
    >= darsie.Gpu.stats.Stats.skipped_prefetch)

let () =
  Alcotest.run "darsie_baselines"
    [
      ( "uv",
        [
          Alcotest.test_case "drops uniform at issue" `Quick test_uv_drops_uniform;
          Alcotest.test_case "reuse-buffer miss" `Quick test_uv_reuse_buffer_miss;
          Alcotest.test_case "affine untouched" `Quick test_uv_affine_untouched;
        ] );
      ( "dac-ideal",
        [
          Alcotest.test_case "removes affine pre-fetch" `Quick
            test_dac_removes_affine_prefetch;
          Alcotest.test_case "removes 1D affine" `Quick test_dac_removes_1d_affine;
          Alcotest.test_case "keeps unstructured" `Quick test_dac_keeps_unstructured;
          Alcotest.test_case "zero sync cost" `Quick test_dac_zero_sync_cost;
        ] );
      ( "tb-ideal",
        [
          Alcotest.test_case "upper bound" `Quick test_tb_ideal_bound;
          Alcotest.test_case "dominates darsie" `Quick
            test_tb_ideal_dominates_darsie_skips;
        ] );
    ]
