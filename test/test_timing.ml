(* Tests for the timing substrate: memory-system models, kernel static
   info, occupancy, and end-to-end SM/GPU behaviour on crafted kernels. *)

open Darsie_isa
open Darsie_timing

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Parser.parse_kernel

(* ------------------------------------------------------------------ *)
(* Coalescer                                                           *)
(* ------------------------------------------------------------------ *)

let test_coalesce () =
  let lines = Mem_model.coalesce ~line_bytes:128 (Array.init 32 (fun i -> 4 * i)) in
  check_int "consecutive words coalesce to one line" 1 (List.length lines);
  let strided =
    Mem_model.coalesce ~line_bytes:128 (Array.init 32 (fun i -> 128 * i))
  in
  check_int "stride-128 needs 32 transactions" 32 (List.length strided);
  let two =
    Mem_model.coalesce ~line_bytes:128 (Array.init 32 (fun i -> 64 + (4 * i)))
  in
  check_int "misaligned spans two lines" 2 (List.length two);
  check_int "empty" 0 (List.length (Mem_model.coalesce ~line_bytes:128 [||]));
  Alcotest.(check (list int))
    "first-touch order" [ 0; 128 ]
    (Mem_model.coalesce ~line_bytes:128 [| 4; 200; 8; 132 |])

let test_shared_conflicts () =
  check_int "broadcast is free" 0
    (Mem_model.shared_conflicts ~banks:32 (Array.make 32 64));
  check_int "one word per bank" 0
    (Mem_model.shared_conflicts ~banks:32 (Array.init 32 (fun i -> 4 * i)));
  (* stride-2 words: 16 banks get 2 distinct words each *)
  check_int "2-way conflict" 1
    (Mem_model.shared_conflicts ~banks:32 (Array.init 32 (fun i -> 8 * i)));
  (* stride-32 words: all map to bank 0 *)
  check_int "32-way conflict" 31
    (Mem_model.shared_conflicts ~banks:32 (Array.init 32 (fun i -> 128 * i)));
  check_int "empty" 0 (Mem_model.shared_conflicts ~banks:32 [||])

(* ------------------------------------------------------------------ *)
(* L1 and DRAM                                                         *)
(* ------------------------------------------------------------------ *)

let test_l1 () =
  let l1 = Mem_model.L1.create ~bytes:1024 ~assoc:2 ~line:128 in
  (* 4 sets *)
  check_bool "cold miss" false (Mem_model.L1.access l1 0);
  check_bool "hit" true (Mem_model.L1.access l1 0);
  check_bool "same line different word" true (Mem_model.L1.access l1 64);
  (* fill the set: lines 0, 512 map to set 0 with 4 sets x 128 *)
  check_bool "second way" false (Mem_model.L1.access l1 512);
  check_bool "both resident" true (Mem_model.L1.access l1 0);
  check_bool "probe does not allocate" false (Mem_model.L1.probe l1 1024);
  (* evict LRU (512 was used less recently than 0) *)
  ignore (Mem_model.L1.access l1 1024);
  check_bool "victim evicted" false (Mem_model.L1.probe l1 512);
  check_bool "MRU survives" true (Mem_model.L1.probe l1 0);
  Mem_model.L1.flush l1;
  check_bool "flush empties" false (Mem_model.L1.probe l1 0)

let test_dram () =
  let d = Mem_model.Dram.create ~txn_cycles:2 ~latency:100 in
  check_int "first burst" 104 (Mem_model.Dram.request d ~now:0 ~ntxns:2);
  (* channel busy until cycle 4; next burst queues *)
  check_int "queued burst" 106 (Mem_model.Dram.request d ~now:0 ~ntxns:1);
  check_int "busy_until" 6 (Mem_model.Dram.busy_until d);
  check_int "idle gap" 216 (Mem_model.Dram.request d ~now:110 ~ntxns:3)

(* ------------------------------------------------------------------ *)
(* Kinfo / occupancy                                                   *)
(* ------------------------------------------------------------------ *)

let sample_launch () =
  let k =
    parse
      {|
.kernel s
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  sqrt.f32 %r3, %r2;
  st.shared.u32 [%r0], %r3;
  bar.sync;
  setp.lt.s32 %p0, %r0, 64;
@%p0 bra end;
end:
  exit;
|}
  in
  let k = { k with Kernel.shared_bytes = 1024 } in
  Kernel.launch k ~grid:(Kernel.dim3 4) ~block:(Kernel.dim3 16 ~y:16)
    ~params:[| 0x2000 |]

let test_kinfo () =
  let launch = sample_launch () in
  let ki = Kinfo.make ~warp_size:32 launch in
  check_bool "mul is alu" true (ki.Kinfo.unit_of.(0) = Kinfo.Alu);
  check_bool "ld is global mem" true (ki.Kinfo.unit_of.(2) = Kinfo.Mem_global);
  check_bool "sqrt is sfu" true (ki.Kinfo.unit_of.(3) = Kinfo.Sfu);
  check_bool "st.shared is shared mem" true
    (ki.Kinfo.unit_of.(4) = Kinfo.Mem_shared);
  check_bool "bar is ctrl" true (ki.Kinfo.unit_of.(5) = Kinfo.Ctrl);
  check_bool "branch flagged" true ki.Kinfo.is_branch.(7);
  check_bool "load flagged" true ki.Kinfo.is_load.(2);
  (* 16x16 launch promotes the tid.x chain *)
  check_bool "mul tb-redundant" true ki.Kinfo.tb_redundant.(0);
  check_bool "load tb-redundant" true ki.Kinfo.tb_redundant.(2);
  check_bool "store never redundant" false ki.Kinfo.tb_redundant.(4)

let test_occupancy () =
  let cfg = Config.default in
  let k = Kernel.make ~name:"k" [| Instr.mk Instr.Exit |] in
  (* warp limit: 8 warps/TB -> 8 TBs with 64 warps *)
  check_int "warp-limited" 8 (Gpu.occupancy cfg k ~warps_per_tb:8);
  check_int "tb-slot limited" 32 (Gpu.occupancy cfg k ~warps_per_tb:1);
  let k_shared = { k with Kernel.shared_bytes = 48 * 1024 } in
  check_int "shared-limited" 2 (Gpu.occupancy cfg k_shared ~warps_per_tb:2);
  let k_regs = { k with Kernel.nregs = 64 } in
  (* 64 regs x 8 warps = 512 per TB; 2048/512 = 4 *)
  check_int "register-limited" 4 (Gpu.occupancy cfg k_regs ~warps_per_tb:8)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_add () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.cycles <- 10;
  a.Stats.issued <- 5;
  b.Stats.cycles <- 20;
  b.Stats.issued <- 7;
  b.Stats.skipped_prefetch <- 3;
  b.Stats.dropped_issue <- 2;
  Stats.add a b;
  check_int "cycles take max" 20 a.Stats.cycles;
  check_int "issued sum" 12 a.Stats.issued;
  check_int "total eliminated" 5 (Stats.total_eliminated a)

(* ------------------------------------------------------------------ *)
(* End-to-end timing behaviour                                         *)
(* ------------------------------------------------------------------ *)

let run_timing ?(cfg = Config.default) ?(engine = Engine.base_factory)
    ?(grid = Kernel.dim3 4) ?(block = Kernel.dim3 64) ktext params =
  let k = parse ktext in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.map
      (fun need ->
        if need then begin
          let b = Darsie_emu.Memory.alloc mem 65536 in
          Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
          b
        end
        else 0)
      params
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  let kinfo = Kinfo.make ~warp_size:32 launch in
  let trace = Darsie_trace.Record.generate mem launch in
  Gpu.run_exn ~cfg engine kinfo trace

let alu_kernel =
  {|
.kernel alu
  mov.u32 %r0, %tid.x;
  add.u32 %r1, %r0, 1;
  add.u32 %r2, %r1, 2;
  add.u32 %r3, %r2, 3;
  add.u32 %r4, %r3, 4;
  add.u32 %r5, %r4, 5;
  exit;
|}

let test_baseline_sanity () =
  let r = run_timing alu_kernel [||] in
  check_int "all instructions issued" (7 * 2 * 4) r.Gpu.stats.Stats.issued;
  check_int "all fetched" (7 * 2 * 4) r.Gpu.stats.Stats.fetched;
  check_bool "cycles positive and bounded" true
    (r.Gpu.cycles > 5 && r.Gpu.cycles < 1000);
  check_bool "ipc sane" true (Gpu.ipc r > 0.05)

let test_dependent_chain_slower () =
  let independent =
    {|
.kernel ind
  mov.u32 %r0, %tid.x;
  add.u32 %r1, %r0, 1;
  add.u32 %r2, %r0, 2;
  add.u32 %r3, %r0, 3;
  add.u32 %r4, %r0, 4;
  add.u32 %r5, %r0, 5;
  exit;
|}
  in
  (* single warp exposes latency; many warps would hide it *)
  let dep = run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32) alu_kernel [||] in
  let ind = run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32) independent [||] in
  check_bool "dependent chain takes longer" true (dep.Gpu.cycles > ind.Gpu.cycles)

let test_memory_latency_visible () =
  let compute = run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32) alu_kernel [||] in
  let memory =
    run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32)
      {|
.kernel m
.params 1
  mul.lo.u32 %r0, %tid.x, 512;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  add.u32 %r3, %r2, 1;
  exit;
|}
      [| true |]
  in
  check_bool "uncoalesced miss latency dominates" true
    (memory.Gpu.cycles > compute.Gpu.cycles + 100);
  check_bool "misses recorded" true (memory.Gpu.stats.Stats.l1_misses > 0);
  check_bool "dram transactions recorded" true
    (memory.Gpu.stats.Stats.dram_transactions >= 32)

let test_l1_reuse () =
  (* same line re-read: second load hits *)
  let r =
    run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32)
      {|
.kernel reuse
.params 1
  ld.global.u32 %r0, [%param0+0];
  ld.global.u32 %r1, [%param0+4];
  exit;
|}
      [| true |]
  in
  check_int "one miss" 1 r.Gpu.stats.Stats.l1_misses;
  check_int "two accesses" 2 r.Gpu.stats.Stats.l1_accesses

let test_barrier_timing () =
  let with_bar =
    run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 256)
      {|
.kernel b
  mov.u32 %r0, %tid.x;
  bar.sync;
  add.u32 %r1, %r0, 1;
  exit;
|}
      [||]
  in
  let without =
    run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 256)
      {|
.kernel nb
  mov.u32 %r0, %tid.x;
  add.u32 %r1, %r0, 1;
  exit;
|}
      [||]
  in
  check_bool "barrier costs at least its latency" true
    (with_bar.Gpu.cycles >= without.Gpu.cycles + Config.default.Config.barrier_lat);
  check_bool "barrier stalls recorded" true
    (with_bar.Gpu.stats.Stats.barrier_stall_cycles > 0)

let test_silicon_sync_overhead () =
  let kernel =
    {|
.kernel loop
  mov.u32 %r0, 0;
top:
  add.u32 %r0, %r0, 1;
  mul.lo.u32 %r1, %r0, 3;
  setp.lt.s32 %p0, %r0, 20;
@%p0 bra top;
  exit;
|}
  in
  let base = run_timing kernel [||] in
  let sync =
    run_timing ~cfg:{ Config.default with Config.sync_at_branches = true }
      kernel [||]
  in
  check_bool "silicon-sync slows loops down" true (sync.Gpu.cycles > base.Gpu.cycles)

let test_multi_sm_scaling () =
  let one_sm =
    run_timing ~cfg:{ Config.default with Config.num_sms = 1 }
      ~grid:(Kernel.dim3 64) alu_kernel [||]
  in
  let four_sm =
    run_timing ~cfg:{ Config.default with Config.num_sms = 4 }
      ~grid:(Kernel.dim3 64) alu_kernel [||]
  in
  check_bool "more SMs finish sooner" true (four_sm.Gpu.cycles < one_sm.Gpu.cycles)

let test_fetch_width_matters () =
  let narrow =
    run_timing ~cfg:{ Config.default with Config.fetch_width = 1 } alu_kernel [||]
  in
  let wide =
    run_timing ~cfg:{ Config.default with Config.fetch_width = 4 } alu_kernel [||]
  in
  check_bool "wider fetch helps" true (wide.Gpu.cycles <= narrow.Gpu.cycles)

let test_icache () =
  (* first touch of each 128B line (16 instructions) misses; everything
     after is resident *)
  let r = run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32) alu_kernel [||] in
  check_int "one line, one cold miss" 1 r.Gpu.stats.Stats.icache_misses;
  (* a tiny I-cache with a long loop body thrashes *)
  let body =
    String.concat "\n"
      (List.init 40 (fun i -> Printf.sprintf "  add.u32 %%r%d, %%r0, %d;" ((i mod 5) + 1) i))
  in
  let big =
    Printf.sprintf
      {|
.kernel big
  mov.u32 %%r0, %%tid.x;
%s
  exit;
|}
      body
  in
  let tiny_icache = { Config.default with Config.icache_bytes = 256 } in
  let small = run_timing ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32) big [||] in
  let thrash =
    run_timing ~cfg:tiny_icache ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32)
      big [||]
  in
  check_bool "more misses with a tiny I-cache" true
    (thrash.Gpu.stats.Stats.icache_misses >= small.Gpu.stats.Stats.icache_misses);
  check_bool "misses cost cycles" true (thrash.Gpu.cycles >= small.Gpu.cycles)

let test_collectors () =
  (* many independent warps; a single operand-collector unit serializes
     register reads *)
  let starved =
    run_timing
      ~cfg:{ Config.default with Config.collector_units = 1 }
      alu_kernel [||]
  in
  let normal = run_timing alu_kernel [||] in
  check_bool "collector starvation slows issue" true
    (starved.Gpu.cycles > normal.Gpu.cycles)

let test_determinism () =
  (* identical traces through identical configs give identical cycles -
     no hidden nondeterminism from hash iteration orders *)
  let k = parse alu_kernel in
  let mem = Darsie_emu.Memory.create () in
  let launch =
    Kernel.launch k ~grid:(Kernel.dim3 8) ~block:(Kernel.dim3 16 ~y:16)
      ~params:[||]
  in
  let kinfo = Kinfo.make ~warp_size:32 launch in
  let trace = Darsie_trace.Record.generate mem launch in
  let r1 = Gpu.run_exn Engine.base_factory kinfo trace in
  let r2 = Gpu.run_exn Engine.base_factory kinfo trace in
  check_int "baseline deterministic" r1.Gpu.cycles r2.Gpu.cycles;
  let d1 = Gpu.run_exn (Darsie_core.Darsie_engine.factory ()) kinfo trace in
  let d2 = Gpu.run_exn (Darsie_core.Darsie_engine.factory ()) kinfo trace in
  check_int "darsie deterministic" d1.Gpu.cycles d2.Gpu.cycles;
  check_int "skip counts deterministic" d1.Gpu.stats.Stats.skipped_prefetch
    d2.Gpu.stats.Stats.skipped_prefetch

let test_lrr_scheduler () =
  let cfg = { Config.default with Config.scheduler = Config.Lrr } in
  let r = run_timing ~cfg alu_kernel [||] in
  check_int "lrr executes everything" (7 * 2 * 4) r.Gpu.stats.Stats.issued;
  let gto = run_timing alu_kernel [||] in
  (* regular kernels are insensitive to the scheduler choice (paper §5) *)
  check_bool "within 25% of GTO" true
    (abs (r.Gpu.cycles - gto.Gpu.cycles) * 4 <= gto.Gpu.cycles)

let test_engine_drop_at_issue () =
  (* an engine that drops everything still completes, with zero executed *)
  let drop_all : Engine.factory =
   fun _ _ _ ->
    let base = Engine.base () in
    { base with Engine.on_issue = (fun ~cycle:_ _ _ -> Engine.Drop) }
  in
  let r = run_timing ~engine:drop_all alu_kernel [||] in
  check_int "nothing executed" 0 r.Gpu.stats.Stats.issued;
  check_int "everything dropped" (7 * 2 * 4) r.Gpu.stats.Stats.dropped_issue

let test_engine_remove_at_fetch () =
  let remove_alu : Engine.factory =
   fun kinfo _ _ ->
    let base = Engine.base () in
    {
      base with
      Engine.remove_at_fetch =
        (fun _ op -> kinfo.Kinfo.unit_of.(op.Darsie_trace.Record.idx) = Kinfo.Alu);
    }
  in
  let r = run_timing ~engine:remove_alu alu_kernel [||] in
  (* only exit remains *)
  check_int "alu removed pre-fetch" (6 * 2 * 4) r.Gpu.stats.Stats.skipped_prefetch;
  check_int "exit still issues" (2 * 4) r.Gpu.stats.Stats.issued

let () =
  Alcotest.run "darsie_timing"
    [
      ( "mem-model",
        [
          Alcotest.test_case "coalescer" `Quick test_coalesce;
          Alcotest.test_case "shared conflicts" `Quick test_shared_conflicts;
          Alcotest.test_case "l1" `Quick test_l1;
          Alcotest.test_case "dram" `Quick test_dram;
        ] );
      ( "static",
        [
          Alcotest.test_case "kinfo" `Quick test_kinfo;
          Alcotest.test_case "occupancy" `Quick test_occupancy;
          Alcotest.test_case "stats add" `Quick test_stats_add;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "baseline sanity" `Quick test_baseline_sanity;
          Alcotest.test_case "dependent chain" `Quick test_dependent_chain_slower;
          Alcotest.test_case "memory latency" `Quick test_memory_latency_visible;
          Alcotest.test_case "l1 reuse" `Quick test_l1_reuse;
          Alcotest.test_case "barrier timing" `Quick test_barrier_timing;
          Alcotest.test_case "silicon sync" `Quick test_silicon_sync_overhead;
          Alcotest.test_case "multi-sm" `Quick test_multi_sm_scaling;
          Alcotest.test_case "fetch width" `Quick test_fetch_width_matters;
          Alcotest.test_case "icache" `Quick test_icache;
          Alcotest.test_case "collectors" `Quick test_collectors;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "lrr scheduler" `Quick test_lrr_scheduler;
        ] );
      ( "engine-hooks",
        [
          Alcotest.test_case "drop at issue" `Quick test_engine_drop_at_issue;
          Alcotest.test_case "remove at fetch" `Quick test_engine_remove_at_fetch;
        ] );
    ]
