(* Unit and property tests for the PTX-lite ISA: value semantics, kernel
   geometry, parser/printer round-trips and the builder. *)

open Darsie_isa

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Value semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_value_wrap () =
  check_int "add wraps" 0 (Value.add 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (Value.sub 0 1);
  check_int "mul low bits" ((0xFFFF * 0xFFFF) land 0xFFFFFFFF)
    (Value.mul 0xFFFF 0xFFFF);
  check_int "mul wraps" 1 (Value.mul 0xFFFFFFFF 0xFFFFFFFF);
  check_int "neg" 0xFFFFFFFF (Value.neg 1)

let test_value_signed () =
  check_int "to_signed negative" (-1) (Value.to_signed 0xFFFFFFFF);
  check_int "to_signed positive" 5 (Value.to_signed 5);
  check_int "of_signed roundtrip" 0xFFFFFFFE (Value.of_signed (-2));
  check_int "div_s truncates toward zero" (Value.of_signed (-2))
    (Value.div_s (Value.of_signed (-7)) 3);
  check_int "rem_s sign follows dividend" (Value.of_signed (-1))
    (Value.rem_s (Value.of_signed (-7)) 3)

let test_value_div_by_zero () =
  check_int "div_u by zero" 0xFFFFFFFF (Value.div_u 42 0);
  check_int "div_s by zero" 0xFFFFFFFF (Value.div_s 42 0);
  check_int "rem_u by zero yields dividend" 42 (Value.rem_u 42 0)

let test_value_shifts () =
  check_int "shl" 8 (Value.shl 1 3);
  check_int "shl by 32 clamps" 0 (Value.shl 1 32);
  check_int "shr_u" 1 (Value.shr_u 8 3);
  check_int "shr_s sign fill" 0xFFFFFFFF
    (Value.shr_s (Value.of_signed (-1)) 4);
  check_int "shr_s by 35 fills sign" 0xFFFFFFFF
    (Value.shr_s (Value.of_signed (-1)) 35);
  check_int "shr_u by 35 is 0" 0 (Value.shr_u 0xFFFFFFFF 35)

let test_value_float () =
  let one = Value.of_float 1.0 in
  check_int "1.0f bits" 0x3F800000 one;
  check_int "fadd" (Value.of_float 3.0) (Value.fadd one (Value.of_float 2.0));
  check_int "fneg flips sign bit" 0xBF800000 (Value.fneg one);
  check_int "fabs" one (Value.fabs (Value.fneg one));
  Alcotest.(check (float 1e-6))
    "roundtrip" 2.5
    (Value.to_float (Value.of_float 2.5));
  check_int "cvt_i2f" (Value.of_float (-3.0))
    (Value.cvt_i2f (Value.of_signed (-3)));
  check_int "cvt_f2i truncates" (Value.of_signed (-2))
    (Value.cvt_f2i (Value.of_float (-2.7)));
  check_int "cvt_f2i NaN is 0" 0 (Value.cvt_f2i (Value.of_float Float.nan))

let test_value_minmax () =
  let m1 = Value.of_signed (-1) in
  check_int "min_s" m1 (Value.min_s m1 1);
  check_int "min_u treats -1 as max" 1 (Value.min_u m1 1);
  check_int "max_s" 1 (Value.max_s m1 1);
  check_int "abs_s" 1 (Value.abs_s m1)

let test_value_cmp () =
  check_bool "cmp_s" true (Value.cmp_s (Value.of_signed (-5)) 3 < 0);
  check_bool "cmp_u" true (Value.cmp_u (Value.of_signed (-5)) 3 > 0);
  check_bool "cmp_f nan unordered" true
    (Value.cmp_f (Value.of_float Float.nan) (Value.of_float 1.0) = None)

(* qcheck: algebraic properties of wrapping arithmetic. *)
let value_gen = QCheck.map Value.truncate QCheck.(int_bound 0x3FFFFFFF |> map (fun x -> x * 7 + x))

(* Differential reference: 32-bit semantics computed through Int64. *)
let i64_ref op a b =
  let open Int64 in
  let mask = 0xFFFFFFFFL in
  let r =
    match op with
    | `Add -> add (of_int a) (of_int b)
    | `Sub -> sub (of_int a) (of_int b)
    | `Mul -> mul (of_int a) (of_int b)
    | `Shl -> if b land 0xFFFFFFFF >= 32 then 0L else shift_left (of_int a) b
    | `Shr_u -> if b land 0xFFFFFFFF >= 32 then 0L else shift_right_logical (of_int a) b
  in
  to_int (logand r mask)

let qcheck_tests =
  let open QCheck in
  let v2 = pair value_gen value_gen in
  let vshift = pair value_gen (map (fun x -> x mod 40) (int_bound 1000)) in
  [
    Test.make ~name:"add matches Int64 reference" ~count:500 v2 (fun (a, b) ->
        Value.add a b = i64_ref `Add a b);
    Test.make ~name:"sub matches Int64 reference" ~count:500 v2 (fun (a, b) ->
        Value.sub a b = i64_ref `Sub a b);
    Test.make ~name:"mul matches Int64 reference" ~count:500 v2 (fun (a, b) ->
        Value.mul a b = i64_ref `Mul a b);
    Test.make ~name:"shl matches Int64 reference" ~count:500 vshift
      (fun (a, b) -> Value.shl a b = i64_ref `Shl a b);
    Test.make ~name:"shr_u matches Int64 reference" ~count:500 vshift
      (fun (a, b) -> Value.shr_u a b = i64_ref `Shr_u a b);
    Test.make ~name:"mulhi_s matches Int64 reference" ~count:500 v2
      (fun (a, b) ->
        let p =
          Int64.mul
            (Int64.of_int (Value.to_signed a))
            (Int64.of_int (Value.to_signed b))
        in
        Value.mulhi_s a b
        = Int64.to_int (Int64.logand (Int64.shift_right p 32) 0xFFFFFFFFL));
    Test.make ~name:"div_s agrees with euclid identity" ~count:500 v2
      (fun (a, b) ->
        b = 0
        || Value.to_signed a
           = (Value.to_signed (Value.div_s a b) * Value.to_signed b)
             + Value.to_signed (Value.rem_s a b));
    Test.make ~name:"add is commutative" ~count:500 v2 (fun (a, b) ->
        Value.add a b = Value.add b a);
    Test.make ~name:"add/sub roundtrip" ~count:500 v2 (fun (a, b) ->
        Value.sub (Value.add a b) b = a);
    Test.make ~name:"mul is commutative" ~count:500 v2 (fun (a, b) ->
        Value.mul a b = Value.mul b a);
    Test.make ~name:"to_signed/of_signed roundtrip" ~count:500 value_gen
      (fun a -> Value.of_signed (Value.to_signed a) = a);
    Test.make ~name:"lognot involutive" ~count:500 value_gen (fun a ->
        Value.lognot (Value.lognot a) = a);
    Test.make ~name:"canonical form" ~count:500 v2 (fun (a, b) ->
        let r = Value.add a b in
        r >= 0 && r <= 0xFFFFFFFF);
  ]

(* ------------------------------------------------------------------ *)
(* Kernel geometry                                                     *)
(* ------------------------------------------------------------------ *)

let dummy_kernel =
  Kernel.make ~name:"k" [| Instr.mk Instr.Exit |]

let test_geometry_1d () =
  let l =
    Kernel.launch dummy_kernel ~grid:(Kernel.dim3 4) ~block:(Kernel.dim3 256)
      ~params:[||]
  in
  check_int "threads" 256 (Kernel.threads_per_block l);
  check_int "warps" 8 (Kernel.warps_per_block l ~warp_size:32);
  check_bool "not multidim" false (Kernel.is_multidimensional l);
  check_bool "xdim condition fails in 1D" false
    (Kernel.xdim_condition l ~warp_size:32);
  (match Kernel.thread_of_lane l ~warp_size:32 ~warp:2 ~lane:5 with
  | Some (x, y, z) ->
    check_int "tid.x" 69 x;
    check_int "tid.y" 0 y;
    check_int "tid.z" 0 z
  | None -> Alcotest.fail "lane should be valid")

let test_geometry_2d () =
  let l =
    Kernel.launch dummy_kernel ~grid:(Kernel.dim3 2 ~y:3)
      ~block:(Kernel.dim3 16 ~y:16) ~params:[||]
  in
  check_int "threads" 256 (Kernel.threads_per_block l);
  check_bool "multidim" true (Kernel.is_multidimensional l);
  check_bool "xdim condition holds" true (Kernel.xdim_condition l ~warp_size:32);
  (* The paper's key layout fact: threads are linearized x-first, so with
     xdim=16 a 32-wide warp covers two rows and every warp's tid.x pattern
     repeats. *)
  (match Kernel.thread_of_lane l ~warp_size:32 ~warp:0 ~lane:17 with
  | Some (x, y, _) ->
    check_int "tid.x wraps at xdim" 1 x;
    check_int "tid.y" 1 y
  | None -> Alcotest.fail "valid lane");
  match Kernel.thread_of_lane l ~warp_size:32 ~warp:3 ~lane:17 with
  | Some (x, y, _) ->
    check_int "tid.x identical across warps" 1 x;
    check_int "tid.y differs across warps" 7 y
  | None -> Alcotest.fail "valid lane"

let test_geometry_partial_warp () =
  let l =
    Kernel.launch dummy_kernel ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 40)
      ~params:[||]
  in
  check_int "two warps for 40 threads" 2 (Kernel.warps_per_block l ~warp_size:32);
  check_bool "lane 7 of warp 1 valid" true
    (Kernel.thread_of_lane l ~warp_size:32 ~warp:1 ~lane:7 <> None);
  check_bool "lane 8 of warp 1 invalid" true
    (Kernel.thread_of_lane l ~warp_size:32 ~warp:1 ~lane:8 = None)

let test_geometry_xdim_condition () =
  let mk bx by =
    Kernel.launch dummy_kernel ~grid:(Kernel.dim3 1)
      ~block:(Kernel.dim3 bx ~y:by) ~params:[||]
  in
  check_bool "16x16 ok" true (Kernel.xdim_condition (mk 16 16) ~warp_size:32);
  check_bool "32x32 ok" true (Kernel.xdim_condition (mk 32 32) ~warp_size:32);
  check_bool "8x8 ok" true (Kernel.xdim_condition (mk 8 8) ~warp_size:32);
  check_bool "48x8 too wide" false (Kernel.xdim_condition (mk 48 8) ~warp_size:32);
  check_bool "12x12 not a power of two" false
    (Kernel.xdim_condition (mk 12 12) ~warp_size:32);
  check_bool "256x1 is 1D" false (Kernel.xdim_condition (mk 256 1) ~warp_size:32)

let test_block_of_index () =
  let l =
    Kernel.launch dummy_kernel ~grid:(Kernel.dim3 3 ~y:2)
      ~block:(Kernel.dim3 8) ~params:[||]
  in
  Alcotest.(check (triple int int int)) "block 0" (0, 0, 0) (Kernel.block_of_index l 0);
  Alcotest.(check (triple int int int)) "block 4" (1, 1, 0) (Kernel.block_of_index l 4)

let test_kernel_validation () =
  Alcotest.check_raises "empty kernel rejected"
    (Invalid_argument "Kernel.make: empty instruction stream") (fun () ->
      ignore (Kernel.make ~name:"bad" [||]));
  Alcotest.check_raises "bad branch target"
    (Invalid_argument "Kernel.make: branch at 0 targets invalid index 7")
    (fun () -> ignore (Kernel.make ~name:"bad" [| Instr.mk (Instr.Bra 7) |]));
  let k =
    Kernel.make ~name:"k"
      [| Instr.mk (Instr.Bin (Instr.Add, 5, Instr.Reg 3, Instr.Imm 1));
         Instr.mk Instr.Exit |]
  in
  check_int "nregs inferred" 6 k.Kernel.nregs

let test_launch_validation () =
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Kernel.launch: threadblock exceeds 1024 threads")
    (fun () ->
      ignore
        (Kernel.launch dummy_kernel ~grid:(Kernel.dim3 1)
           ~block:(Kernel.dim3 64 ~y:32) ~params:[||]))

(* ------------------------------------------------------------------ *)
(* Parser / printer                                                    *)
(* ------------------------------------------------------------------ *)

let sample_asm =
  {|
.kernel sample
.params 2
.shared 128
  mov.u32 %r0, %tid.x;       // thread index
  mov.u32 %r1, %ctaid.x;
  mad.lo.u32 %r2, %r1, %ntid.x, %r0;
  shl.b32 %r3, %r2, 2;
  add.u32 %r4, %r3, %param0;
  ld.global.u32 %r5, [%r4+0];
  setp.lt.s32 %p0, %r5, 100;
@%p0 bra skip;
  add.u32 %r5, %r5, 1;
skip:
  st.global.u32 [%r4+0], %r5;
  st.shared.u32 [%r3], %r5;
  bar.sync;
  atom.global.add.u32 %r6, [%param1], %r5;
  exit;
|}

let test_parse_sample () =
  let k = Parser.parse_kernel sample_asm in
  check_int "instruction count" 14 (Array.length k.Kernel.insts);
  check_int "params" 2 k.Kernel.nparams;
  check_int "shared" 128 k.Kernel.shared_bytes;
  check_int "nregs" 7 k.Kernel.nregs;
  check_int "npregs" 1 k.Kernel.npregs;
  (* the guarded branch goes to the store at index 9 *)
  match k.Kernel.insts.(7).Instr.body with
  | Instr.Bra t -> check_int "branch target" 9 t
  | _ -> Alcotest.fail "expected a branch at index 7"

let test_parse_roundtrip_sample () =
  let k = Parser.parse_kernel sample_asm in
  let k2 = Parser.parse_kernel (Printer.kernel_to_string k) in
  check_bool "roundtrip equal" true (k = k2)

let test_parse_immediates () =
  let resolve _ = 0 in
  let i1 = Parser.parse_instr ~resolve "add.u32 %r0, %r1, -5" in
  (match i1.Instr.body with
  | Instr.Bin (Instr.Add, 0, Instr.Reg 1, Instr.Imm v) ->
    check_int "negative imm" (Value.of_signed (-5)) v
  | _ -> Alcotest.fail "bad parse");
  let i2 = Parser.parse_instr ~resolve "mov.u32 %r0, 0x1f" in
  (match i2.Instr.body with
  | Instr.Un (Instr.Mov, 0, Instr.Imm 31) -> ()
  | _ -> Alcotest.fail "hex imm");
  let i3 = Parser.parse_instr ~resolve "mov.u32 %r0, 1.5f" in
  (match i3.Instr.body with
  | Instr.Un (Instr.Mov, 0, Instr.Imm v) ->
    check_int "float imm" (Value.of_float 1.5) v
  | _ -> Alcotest.fail "float imm");
  let i4 = Parser.parse_instr ~resolve "mov.u32 %r0, 0f3F800000" in
  match i4.Instr.body with
  | Instr.Un (Instr.Mov, 0, Instr.Imm v) ->
    check_int "ptx float bits" (Value.of_float 1.0) v
  | _ -> Alcotest.fail "ptx float imm"

let test_parse_guards () =
  let resolve _ = 3 in
  let i = Parser.parse_instr ~resolve "@!%p2 bra somewhere;" in
  check_bool "negated guard" true (i.Instr.guard = Some (false, 2));
  check_bool "is branch" true (Instr.is_branch i)

let test_parse_errors () =
  let expect_fail s =
    match Parser.parse_kernel s with
    | exception Parser.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected parse failure for %S" s
  in
  expect_fail ".kernel k\n  frobnicate %r0;";
  expect_fail ".kernel k\n  add.u32 %r0, %r1;";
  expect_fail ".kernel k\n  bra nowhere;";
  expect_fail "  exit;";
  expect_fail ".kernel k\n  ld.global.u32 %r0, %r1;";
  expect_fail ".kernel k\nfoo:\nfoo:\n  exit;"

(* qcheck: random builder programs survive a print/parse roundtrip. *)
let arbitrary_body =
  let open QCheck.Gen in
  let reg = int_bound 7 in
  let operand =
    oneof
      [
        map (fun r -> Instr.Reg r) reg;
        map (fun v -> Instr.Imm (Value.truncate v)) (int_bound 1000000);
        return (Instr.Sreg (Instr.Tid Instr.X));
        return (Instr.Sreg (Instr.Ctaid Instr.Y));
        map (fun i -> Instr.Param i) (int_bound 3);
      ]
  in
  let binop =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div_s; Instr.And; Instr.Shl;
        Instr.Fadd; Instr.Fmul; Instr.Min_u; Instr.Shr_s ]
  in
  let unop =
    oneofl [ Instr.Mov; Instr.Not; Instr.Neg; Instr.Fsqrt; Instr.Cvt_i2f ]
  in
  oneof
    [
      map3 (fun op d (a, b) -> Instr.Bin (op, d, a, b)) binop reg
        (pair operand operand);
      map3 (fun op d a -> Instr.Un (op, d, a)) unop reg operand;
      map3
        (fun d (a, b) c -> Instr.Tern (Instr.Mad, d, a, b, c))
        reg (pair operand operand) operand;
      map3
        (fun p (a, b) cmp -> Instr.Setp (Instr.Scmp, cmp, p, a, b))
        (int_bound 3) (pair operand operand)
        (oneofl [ Instr.Eq; Instr.Lt; Instr.Ge ]);
      map3 (fun d a off -> Instr.Ld (Instr.Global, d, a, 4 * off)) reg operand
        (int_bound 16);
      map3 (fun a off v -> Instr.St (Instr.Shared, a, 4 * off, v)) operand
        (int_bound 16) operand;
      map3
        (fun d (a, v) op -> Instr.Atom (op, d, a, v))
        reg (pair operand operand)
        (oneofl
           [ Instr.Atom_add; Instr.Atom_max; Instr.Atom_min; Instr.Atom_exch;
             Instr.Atom_cas ]);
      map3
        (fun d (a, b) p -> Instr.Selp (d, a, b, p))
        reg (pair operand operand) (int_bound 3);
    ]

let arbitrary_kernel =
  let open QCheck.Gen in
  let guard =
    oneof [ return None; map2 (fun s p -> Some (s, p mod 4)) bool (int_bound 100) ]
  in
  let body_list = list_size (int_range 1 20) (pair guard arbitrary_body) in
  map
    (fun bodies ->
      let insts =
        List.map (fun (g, b) -> Instr.mk ?guard:g b) bodies
        @ [ Instr.mk Instr.Exit ]
      in
      Kernel.make ~name:"rand" ~nparams:4 ~shared_bytes:256
        (Array.of_list insts))
    body_list

let qcheck_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:200
    (QCheck.make ~print:Printer.kernel_to_string arbitrary_kernel) (fun k ->
      Parser.parse_kernel (Printer.kernel_to_string k) = k)

let qcheck_parser_total =
  (* arbitrary input must be rejected cleanly, never crash *)
  QCheck.Test.make ~name:"parser is total (Parse_error only)" ~count:300
    QCheck.(string_gen_of_size (Gen.int_bound 120) Gen.printable)
    (fun s ->
      match Parser.parse_kernel (".kernel k\n" ^ s ^ "\n  exit;") with
      | (_ : Kernel.t) -> true
      | exception Parser.Parse_error _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_builder_loop () =
  let b = Builder.create ~name:"count" ~nparams:1 () in
  let r = Builder.reg b in
  let p = Builder.pred b in
  Builder.mov b r (Builder.O.i 0);
  let top = Builder.here b in
  Builder.add b r (Builder.O.r r) (Builder.O.i 1);
  Builder.setp b Instr.Scmp Instr.Lt p (Builder.O.r r) (Builder.O.p 0);
  Builder.bra b ~guard:(true, p) top;
  Builder.exit_ b;
  let k = Builder.finish b in
  check_int "5 instructions" 5 (Array.length k.Kernel.insts);
  (match k.Kernel.insts.(3).Instr.body with
  | Instr.Bra 1 -> ()
  | _ -> Alcotest.fail "backward branch resolves to index 1");
  check_int "one vreg" 1 k.Kernel.nregs;
  check_int "one preg" 1 k.Kernel.npregs

let test_builder_forward_label () =
  let b = Builder.create ~name:"fwd" () in
  let l = Builder.fresh_label b in
  Builder.bra b l;
  Builder.mov b (Builder.reg b) (Builder.O.i 1);
  Builder.place b l;
  Builder.exit_ b;
  let k = Builder.finish b in
  match k.Kernel.insts.(0).Instr.body with
  | Instr.Bra 2 -> ()
  | _ -> Alcotest.fail "forward branch resolves to index 2"

let test_builder_unplaced_label () =
  let b = Builder.create ~name:"bad" () in
  let l = Builder.fresh_label b in
  Builder.bra b l;
  Builder.exit_ b;
  Alcotest.check_raises "unplaced label"
    (Invalid_argument "Builder.finish: label L0 referenced but never placed")
    (fun () -> ignore (Builder.finish b))

(* ------------------------------------------------------------------ *)
(* Binary encoding (64-bit words, redundancy-hint bits)                *)
(* ------------------------------------------------------------------ *)

let roundtrip_inst ?(hint = 0) inst =
  match Encode.encode ~hint inst with
  | Error e -> Alcotest.failf "encode failed: %s" (Encode.error_to_string e)
  | Ok w -> (
    match Encode.decode w with
    | Ok (inst', hint') ->
      check_bool "instruction roundtrips" true (inst = inst');
      check_int "hint roundtrips" hint hint'
    | Error msg -> Alcotest.failf "decode failed: %s" msg)

let test_encode_roundtrip_basics () =
  roundtrip_inst (Instr.mk (Instr.Bin (Instr.Add, 3, Instr.Reg 1, Instr.Imm 42)));
  roundtrip_inst ~hint:2
    (Instr.mk (Instr.Tern (Instr.Mad, 7, Instr.Sreg (Instr.Tid Instr.X),
                           Instr.Param 2, Instr.Reg 9)));
  roundtrip_inst ~hint:1
    (Instr.mk (Instr.Ld (Instr.Shared, 4, Instr.Reg 2, 128)));
  roundtrip_inst
    (Instr.mk (Instr.St (Instr.Global, Instr.Reg 1, 12, Instr.Sreg (Instr.Ctaid Instr.Y))));
  roundtrip_inst
    (Instr.mk (Instr.Setp (Instr.Fcmp, Instr.Le, 3, Instr.Reg 0, Instr.Reg 5)));
  roundtrip_inst (Instr.mk (Instr.Selp (2, Instr.Imm 7, Instr.Reg 1, 4)));
  roundtrip_inst (Instr.mk (Instr.Atom (Instr.Atom_cas, 6, Instr.Reg 1, Instr.Reg 2)));
  roundtrip_inst ~hint:3 (Instr.mk ~guard:(false, 5) (Instr.Bra 1000));
  roundtrip_inst (Instr.mk Instr.Bar);
  roundtrip_inst ~hint:2 (Instr.mk Instr.Exit)

let test_encode_wide_mov () =
  (* a float immediate needs the full 32 bits *)
  let bits = Value.of_float 1.5 in
  roundtrip_inst (Instr.mk (Instr.Un (Instr.Mov, 9, Instr.Imm bits)));
  roundtrip_inst (Instr.mk (Instr.Un (Instr.Mov, 9, Instr.Imm 0xFFFFFFFF)))

let test_encode_errors () =
  let big_imm = Instr.mk (Instr.Bin (Instr.Add, 0, Instr.Reg 1, Instr.Imm 0x10000)) in
  check_bool "wide immediate in an add is rejected" false
    (Encode.encodable big_imm);
  check_bool "big offset rejected" false
    (Encode.encodable (Instr.mk (Instr.Ld (Instr.Global, 0, Instr.Reg 1, 4096))));
  check_bool "register out of range" false
    (Encode.encodable (Instr.mk (Instr.Un (Instr.Mov, 300, Instr.Reg 0))));
  check_bool "predicate out of range" false
    (Encode.encodable (Instr.mk ~guard:(true, 9) Instr.Exit));
  check_bool "far branch rejected" false
    (Encode.encodable (Instr.mk (Instr.Bra 5000)))

let test_encode_hint_bits () =
  check_int "two spare bits, as in the paper" 2 Encode.hint_bits;
  (* the hint must not disturb the instruction *)
  let inst = Instr.mk (Instr.Bin (Instr.Xor, 1, Instr.Reg 2, Instr.Reg 3)) in
  let words =
    List.map
      (fun h -> Result.get_ok (Encode.encode ~hint:h inst))
      [ 0; 1; 2; 3 ]
  in
  check_int "four distinct words" 4 (List.length (List.sort_uniq compare words));
  List.iteri
    (fun h w ->
      match Encode.decode w with
      | Ok (i, h') -> check_bool "same instr, own hint" true (i = inst && h' = h)
      | Error m -> Alcotest.fail m)
    words

let test_legalize_preserves_semantics () =
  (* a kernel full of wide immediates and offsets; the legalized version
     must compute the same result *)
  let k =
    Parser.parse_kernel
      {|
.kernel wide
.params 1
  mov.u32 %r0, 0x12345678;
  add.u32 %r1, %r0, 0xABCDE;
  mad.lo.u32 %r2, %r1, 0x10000, 0xFFFFF;
  shl.b32 %r3, %tid.x, 2;
  add.u32 %r3, %r3, %param0;
  st.global.u32 [%r3+4096], %r2;
  exit;
|}
  in
  let lk = Encode.legalize k in
  check_bool "legalized is encodable" true
    (Result.is_ok (Encode.encode_kernel lk));
  check_bool "legalization grew the kernel" true
    (Array.length lk.Kernel.insts > Array.length k.Kernel.insts);
  let run kernel =
    let mem = Darsie_emu.Memory.create () in
    let base = Darsie_emu.Memory.alloc mem 65536 in
    let launch =
      Kernel.launch kernel ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32)
        ~params:[| base |]
    in
    ignore (Darsie_emu.Interp.run mem launch);
    Darsie_emu.Memory.read_i32s mem (base + 4096) 32
  in
  Alcotest.(check (array int)) "same results" (run k) (run lk)

let test_legalize_remaps_branches () =
  let k =
    Parser.parse_kernel
      {|
.kernel remap
.params 1
  mov.u32 %r0, 0;
top:
  add.u32 %r0, %r0, 0x1FFFF;
  setp.lt.u32 %p0, %r0, 0xFFFFF;
@%p0 bra top;
  shl.b32 %r1, %tid.x, 2;
  add.u32 %r1, %r1, %param0;
  st.global.u32 [%r1+0], %r0;
  exit;
|}
  in
  let lk = Encode.legalize k in
  check_bool "legalized encodable" true (Result.is_ok (Encode.encode_kernel lk));
  let run kernel =
    let mem = Darsie_emu.Memory.create () in
    let base = Darsie_emu.Memory.alloc mem 4096 in
    let launch =
      Kernel.launch kernel ~grid:(Kernel.dim3 1) ~block:(Kernel.dim3 32)
        ~params:[| base |]
    in
    ignore (Darsie_emu.Interp.run mem launch);
    Darsie_emu.Memory.read_i32s mem base 32
  in
  Alcotest.(check (array int)) "loop results match" (run k) (run lk)

let test_encode_workload_kernels () =
  (* every Table-1 kernel legalizes into a fully encodable binary image *)
  List.iter
    (fun (w : Darsie_workloads.Workload.t) ->
      let p = w.Darsie_workloads.Workload.prepare ~scale:1 in
      let k = p.Darsie_workloads.Workload.launch.Kernel.kernel in
      let lk = Encode.legalize k in
      match Encode.encode_kernel lk with
      | Ok words ->
        check_int
          (w.Darsie_workloads.Workload.abbr ^ " image size")
          (8 * Array.length lk.Kernel.insts)
          (8 * Array.length words);
        (* decode back and compare *)
        Array.iteri
          (fun i word ->
            match Encode.decode word with
            | Ok (inst, _) ->
              if inst <> lk.Kernel.insts.(i) then
                Alcotest.failf "%s: instruction %d does not roundtrip"
                  w.Darsie_workloads.Workload.abbr i
            | Error m -> Alcotest.fail m)
          words
      | Error (i, e) ->
        Alcotest.failf "%s: instruction %d unencodable: %s"
          w.Darsie_workloads.Workload.abbr i (Encode.error_to_string e))
    Darsie_workloads.Registry.all

let qcheck_encode_roundtrip =
  QCheck.Test.make ~name:"legalize + encode/decode roundtrip" ~count:200
    (QCheck.make ~print:Printer.kernel_to_string arbitrary_kernel) (fun k ->
      let lk = Encode.legalize k in
      match Encode.encode_kernel lk with
      | Error _ -> false
      | Ok words ->
        Array.for_all2
          (fun w inst ->
            match Encode.decode w with
            | Ok (inst', _) -> inst = inst'
            | Error _ -> false)
          words lk.Kernel.insts)

(* ------------------------------------------------------------------ *)
(* Instruction predicates                                              *)
(* ------------------------------------------------------------------ *)

let test_instr_predicates () =
  let ld = Instr.mk (Instr.Ld (Instr.Global, 0, Instr.Reg 1, 0)) in
  let st = Instr.mk (Instr.St (Instr.Global, Instr.Reg 0, 0, Instr.Reg 1)) in
  let atom = Instr.mk (Instr.Atom (Instr.Atom_add, 0, Instr.Reg 1, Instr.Reg 2)) in
  check_bool "ld is load" true (Instr.is_load ld);
  check_bool "ld has no side effect" false (Instr.has_side_effect ld);
  check_bool "st has side effect" true (Instr.has_side_effect st);
  check_bool "atom has side effect" true (Instr.has_side_effect atom);
  check_bool "atom dst" true (Instr.dst_reg atom = Some 0);
  let sfu = Instr.mk (Instr.Un (Instr.Fsqrt, 0, Instr.Reg 1)) in
  check_bool "sqrt is sfu" true (Instr.is_sfu sfu);
  check_bool "sqrt is float" true (Instr.is_float_op sfu);
  let mad = Instr.mk (Instr.Tern (Instr.Mad, 0, Instr.Reg 1, Instr.Reg 2, Instr.Reg 1)) in
  Alcotest.(check (list int)) "src regs deduplicated" [ 1; 2 ] (Instr.src_regs mad);
  let cas = Instr.mk (Instr.Atom (Instr.Atom_cas, 3, Instr.Reg 1, Instr.Reg 2)) in
  Alcotest.(check (list int)) "cas reads its dst" [ 1; 2; 3 ] (Instr.src_regs cas)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest (qcheck_roundtrip :: qcheck_parser_total :: qcheck_tests) in
  Alcotest.run "darsie_isa"
    [
      ( "value",
        [
          Alcotest.test_case "wrapping" `Quick test_value_wrap;
          Alcotest.test_case "signed" `Quick test_value_signed;
          Alcotest.test_case "div by zero" `Quick test_value_div_by_zero;
          Alcotest.test_case "shifts" `Quick test_value_shifts;
          Alcotest.test_case "float" `Quick test_value_float;
          Alcotest.test_case "minmax" `Quick test_value_minmax;
          Alcotest.test_case "compare" `Quick test_value_cmp;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "1d" `Quick test_geometry_1d;
          Alcotest.test_case "2d" `Quick test_geometry_2d;
          Alcotest.test_case "partial warp" `Quick test_geometry_partial_warp;
          Alcotest.test_case "xdim condition" `Quick test_geometry_xdim_condition;
          Alcotest.test_case "block_of_index" `Quick test_block_of_index;
          Alcotest.test_case "kernel validation" `Quick test_kernel_validation;
          Alcotest.test_case "launch validation" `Quick test_launch_validation;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sample kernel" `Quick test_parse_sample;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip_sample;
          Alcotest.test_case "immediates" `Quick test_parse_immediates;
          Alcotest.test_case "guards" `Quick test_parse_guards;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "builder",
        [
          Alcotest.test_case "loop" `Quick test_builder_loop;
          Alcotest.test_case "forward label" `Quick test_builder_forward_label;
          Alcotest.test_case "unplaced label" `Quick test_builder_unplaced_label;
        ] );
      ( "instr",
        [ Alcotest.test_case "predicates" `Quick test_instr_predicates ] );
      ( "encoding",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_encode_roundtrip_basics;
          Alcotest.test_case "wide mov" `Quick test_encode_wide_mov;
          Alcotest.test_case "errors" `Quick test_encode_errors;
          Alcotest.test_case "hint bits" `Quick test_encode_hint_bits;
          Alcotest.test_case "legalize semantics" `Quick
            test_legalize_preserves_semantics;
          Alcotest.test_case "legalize branches" `Quick
            test_legalize_remaps_branches;
          Alcotest.test_case "workload kernels encode" `Quick
            test_encode_workload_kernels;
          QCheck_alcotest.to_alcotest qcheck_encode_roundtrip;
        ] );
      ("properties", qsuite);
    ]
