# Convenience entry points; everything ultimately goes through dune.

DUNE ?= dune
SMOKE_DIR ?= /tmp/darsie-smoke

.PHONY: all build test verify bench profile-smoke check-smoke clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# The tier-1 gate: a clean build plus the full test suite.
verify:
	$(DUNE) build && $(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# Export metrics + a Chrome trace for MM/DARSIE, then re-validate the
# JSON file through the schema tests (DARSIE_METRICS_FILE enables the
# otherwise-skipped "exported file" case).
profile-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- profile MM -m DARSIE \
	  --json $(SMOKE_DIR)/mm.json \
	  --chrome-trace $(SMOKE_DIR)/mm.trace.json \
	  --csv $(SMOKE_DIR)/mm.csv
	DARSIE_METRICS_FILE=$(SMOKE_DIR)/mm.json \
	  $(DUNE) exec test/test_obs.exe -- test schema

# Robustness smoke: differential oracle plus seeded fault injection on
# two apps (LIB has candidates for all three fault kinds), exported and
# re-validated as a check report. Exits nonzero — with a per-failure-class
# code — if anything escapes.
check-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- check MM --inject 3 --seed 7 \
	  --json $(SMOKE_DIR)/check_mm.json
	$(DUNE) exec bin/darsie.exe -- check LIB --inject 6 --seed 7 \
	  --json $(SMOKE_DIR)/check_lib.json

clean:
	$(DUNE) clean
