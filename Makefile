# Convenience entry points; everything ultimately goes through dune.

DUNE ?= dune
SMOKE_DIR ?= /tmp/darsie-smoke

.PHONY: all build test verify doc cli-docs bench profile-smoke check-smoke \
  fuzz-smoke annotate-smoke explain-smoke cache-smoke fastforward-smoke \
  telemetry-smoke fidelity-smoke shard-smoke bench-compare clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# The tier-1 gate: a clean build plus the full test suite.
verify:
	$(DUNE) build && $(DUNE) runtest

# API reference for every public .mli (requires odoc).
doc:
	$(DUNE) build @doc

# Regenerate docs/cli.md from the binary's --help; CI diffs the result.
cli-docs: build
	./tools/update-cli-docs.sh

bench:
	$(DUNE) exec bench/main.exe

# Export metrics + a Chrome trace for MM/DARSIE, then re-validate the
# JSON file through the schema tests (DARSIE_METRICS_FILE enables the
# otherwise-skipped "exported file" case).
profile-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- profile MM -m DARSIE \
	  --json $(SMOKE_DIR)/mm.json \
	  --chrome-trace $(SMOKE_DIR)/mm.trace.json \
	  --csv $(SMOKE_DIR)/mm.csv
	DARSIE_METRICS_FILE=$(SMOKE_DIR)/mm.json \
	  $(DUNE) exec test/test_obs.exe -- test schema

# Robustness smoke: differential oracle plus seeded fault injection on
# two apps (LIB has candidates for all three fault kinds), exported and
# re-validated as a check report. Exits nonzero — with a per-failure-class
# code — if anything escapes.
check-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- check MM --inject 3 --seed 7 \
	  --json $(SMOKE_DIR)/check_mm.json
	$(DUNE) exec bin/darsie.exe -- check LIB --inject 6 --seed 7 \
	  --json $(SMOKE_DIR)/check_lib.json

# Fuzzer smoke: a fixed-seed 100-kernel campaign through the stacked
# differential (every generated kernel must pass the oracle, the
# fast-forward bit-identity check and the accounting invariants; exits
# 7 on an oracle mismatch, 2 on anything else), the same campaign's
# report re-validated as JSON, then a replay of every committed
# counterexample witness in test/corpus/.
fuzz-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- fuzz --seed 0 --count 100 \
	  --json $(SMOKE_DIR)/fuzz.json
	$(DUNE) exec bin/darsie.exe -- fuzz --seed 0 --count 100 --sm-domains 2 \
	  --json $(SMOKE_DIR)/fuzz_shard.json
	$(DUNE) exec bin/darsie.exe -- fuzz --replay-corpus test/corpus

# Hotspot-annotation smoke: per-instruction listing for MM on two
# machines (exit 2 if the per-PC charges diverge from the stall
# attribution), plus a metrics export whose per_pc section is
# re-validated on write.
annotate-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- annotate MM -m DARSIE -m DAC-IDEAL \
	  --top 5 --json $(SMOKE_DIR)/mm_annotate.json

# Skip-ledger smoke: dynamic-fate accounting for a 1D and a multi-dim
# app (exit 2 on a conservation violation), with the exported ledger's
# invariants — fate totals sum to the eligible count, captured is
# skipped + parked, per-row fates sum to the row's eligible count —
# re-proved from the JSON by jq.
explain-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- explain LIB --top 3 \
	  --json $(SMOKE_DIR)/lib_explain.json
	$(DUNE) exec bin/darsie.exe -- explain MM --top 3 \
	  --json $(SMOKE_DIR)/mm_explain.json
	for f in $(SMOKE_DIR)/lib_explain.json $(SMOKE_DIR)/mm_explain.json; do \
	  jq -e '.skip_ledger | (.expected_total == ([.totals[]] | add)) and (.captured == .totals.skipped + .totals.parked_waiting_leaderwb) and (.expected_total == ([.rows[].expected] | add)) and ([.rows[] | .expected == ([del(.pc, .expected)[]] | add)] | all)' \
	    $$f > /dev/null \
	    || { echo "skip-ledger invariants violated in $$f"; exit 1; }; \
	done

# Trace-cache smoke: the same profiled run twice through a fresh cache
# directory must miss-then-hit and print byte-identical output.
cache-smoke: build
	mkdir -p $(SMOKE_DIR)
	rm -rf $(SMOKE_DIR)/cache
	$(DUNE) exec bin/darsie.exe -- run MM -m DARSIE \
	  --cache $(SMOKE_DIR)/cache | tee $(SMOKE_DIR)/cache_run1.txt \
	  | grep -q "1 miss"
	$(DUNE) exec bin/darsie.exe -- run MM -m DARSIE \
	  --cache $(SMOKE_DIR)/cache | tee $(SMOKE_DIR)/cache_run2.txt \
	  | grep -q "1 hit"
	grep -v "trace cache:" $(SMOKE_DIR)/cache_run1.txt > $(SMOKE_DIR)/cache_run1.cmp
	grep -v "trace cache:" $(SMOKE_DIR)/cache_run2.txt > $(SMOKE_DIR)/cache_run2.cmp
	diff $(SMOKE_DIR)/cache_run1.cmp $(SMOKE_DIR)/cache_run2.cmp

# Fast-forward smoke: the event-driven cycle loop must leave every
# simulated metric bit-identical to stepping each cycle. One
# memory-bound app (the subset where the jumps are biggest), serial,
# full metrics document on vs off, byte-diffed after masking the
# machine_config.fast_forward echo (schema v3 records which strategy
# produced the file; everything simulated must still match exactly).
fastforward-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- run BIN -m DARSIE -j 1 \
	  --json $(SMOKE_DIR)/ff_on.json > /dev/null
	$(DUNE) exec bin/darsie.exe -- run BIN -m DARSIE -j 1 \
	  --no-fast-forward --json $(SMOKE_DIR)/ff_off.json > /dev/null
	jq '.machine_config.fast_forward = true' $(SMOKE_DIR)/ff_on.json \
	  > $(SMOKE_DIR)/ff_on.cmp
	jq '.machine_config.fast_forward = true' $(SMOKE_DIR)/ff_off.json \
	  > $(SMOKE_DIR)/ff_off.cmp
	diff $(SMOKE_DIR)/ff_on.cmp $(SMOKE_DIR)/ff_off.cmp

# Host-telemetry smoke: a full-matrix run with spans on, the exported
# document's integer invariant — sum of per-phase self_ns equals sum of
# per-domain busy_ns, exactly — re-proved from the file by jq (the CLI
# already validated it before writing; this checks the serialized
# form), the traceEvents list confirmed non-empty and well-formed, and
# the summary renderer run over the same file.
telemetry-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- experiment fig8 -j 2 \
	  --telemetry $(SMOKE_DIR)/telemetry.json > /dev/null
	jq -e '.host_telemetry | ([.phases[].self_ns] | add) == ([.domains[].busy_ns] | add)' \
	  $(SMOKE_DIR)/telemetry.json > /dev/null \
	  || { echo "telemetry self-time identity violated"; exit 1; }
	jq -e '(.traceEvents | length) > 0 and ([.traceEvents[] | has("ph")] | all)' \
	  $(SMOKE_DIR)/telemetry.json > /dev/null \
	  || { echo "telemetry traceEvents malformed"; exit 1; }
	$(DUNE) exec bin/darsie.exe -- telemetry-summary $(SMOKE_DIR)/telemetry.json \
	  | grep -q "host telemetry:"

# Machine-fidelity smoke: one app at non-default knobs (dual-issue
# fetch bundles + a per-warp MSHR limit), with the cycle-conservation
# invariant — every stall bucket of every SM sums back to the simulated
# cycle count, eight buckets including the knob-introduced mem_struct —
# re-proved from the exported JSON by jq, and the machine_config echo
# checked against the flags that produced the file.
fidelity-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- run MM -m DARSIE \
	  --issue-width 2 --mshrs 8 --json $(SMOKE_DIR)/fidelity.json > /dev/null
	jq -e '([.stall_attribution.total[]] | add) == .cycles * .num_sms' \
	  $(SMOKE_DIR)/fidelity.json > /dev/null \
	  || { echo "stall buckets do not sum to cycles x SMs"; exit 1; }
	jq -e '.cycles as $$c | [.stall_attribution.per_sm[] | ([.[]] | add) == $$c] | all' \
	  $(SMOKE_DIR)/fidelity.json > /dev/null \
	  || { echo "per-SM stall buckets do not sum to cycles"; exit 1; }
	jq -e '(.stall_attribution.total | has("mem_struct")) and .machine_config.issue_width == 2 and .machine_config.mshrs == 8' \
	  $(SMOKE_DIR)/fidelity.json > /dev/null \
	  || { echo "machine_config echo or mem_struct bucket missing"; exit 1; }

# Sharded-cycle-loop smoke: one big-grid simulation (MM at --scale 4,
# 64 thread blocks) with the SM array sharded across worker domains
# must produce a metrics document byte-identical to the serial loop.
# --sm-domains is a host knob excluded from the machine_config echo, so
# the diff needs no masking at all; both auto-sizing (0) and an
# explicit count are compared against serial (1).
shard-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- run MM -m DARSIE --scale 4 -j 1 \
	  --cache $(SMOKE_DIR)/shardcache --sm-domains 1 \
	  --json $(SMOKE_DIR)/shard_serial.json > /dev/null
	$(DUNE) exec bin/darsie.exe -- run MM -m DARSIE --scale 4 -j 1 \
	  --cache $(SMOKE_DIR)/shardcache --sm-domains 0 \
	  --json $(SMOKE_DIR)/shard_auto.json > /dev/null
	$(DUNE) exec bin/darsie.exe -- run MM -m DARSIE --scale 4 -j 1 \
	  --cache $(SMOKE_DIR)/shardcache --sm-domains 2 \
	  --json $(SMOKE_DIR)/shard_two.json > /dev/null
	diff $(SMOKE_DIR)/shard_serial.json $(SMOKE_DIR)/shard_auto.json
	diff $(SMOKE_DIR)/shard_serial.json $(SMOKE_DIR)/shard_two.json

# Record a fresh bench trajectory point into bench/history/ and gate it
# against the committed baseline. Deterministic simulated metrics use a
# 0.5% threshold; wall-clock metrics 25%. Exits nonzero on regression.
# The shard baseline (recorded after the sharded cycle loop landed;
# default-config simulated metrics bit-identical to the fidelity
# record); earlier records are kept with identical simulated metrics:
# bench/BENCH_2026-08-06.json (serial seed),
# bench/BENCH_2026-08-06_parallel.json (parallel+cache),
# bench/BENCH_2026-08-06_fastforward.json (event-driven cycle loop),
# bench/BENCH_2026-08-09_telemetry.json (host telemetry) and
# bench/BENCH_2026-08-09_fidelity.json (machine-fidelity knobs).
BENCH_BASELINE ?= bench/BENCH_2026-08-09_shard.json
bench-compare: build
	mkdir -p bench/history
	$(DUNE) exec bench/main.exe -- --trend bench/history/current.json
	$(DUNE) exec bin/darsie.exe -- bench-compare \
	  $(BENCH_BASELINE) bench/history/current.json

clean:
	$(DUNE) clean
