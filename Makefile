# Convenience entry points; everything ultimately goes through dune.

DUNE ?= dune
SMOKE_DIR ?= /tmp/darsie-smoke

.PHONY: all build test verify bench profile-smoke clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# The tier-1 gate: a clean build plus the full test suite.
verify:
	$(DUNE) build && $(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# Export metrics + a Chrome trace for MM/DARSIE, then re-validate the
# JSON file through the schema tests (DARSIE_METRICS_FILE enables the
# otherwise-skipped "exported file" case).
profile-smoke: build
	mkdir -p $(SMOKE_DIR)
	$(DUNE) exec bin/darsie.exe -- profile MM -m DARSIE \
	  --json $(SMOKE_DIR)/mm.json \
	  --chrome-trace $(SMOKE_DIR)/mm.trace.json \
	  --csv $(SMOKE_DIR)/mm.csv
	DARSIE_METRICS_FILE=$(SMOKE_DIR)/mm.json \
	  $(DUNE) exec test/test_obs.exe -- test schema

clean:
	$(DUNE) clean
