(* Quickstart: assemble a kernel from text, run the DARSIE compiler pass,
   execute it functionally, and compare baseline vs DARSIE timing.

     dune exec examples/quickstart.exe *)

open Darsie_isa
open Darsie_timing

(* A tiny 2D kernel: each thread scales one matrix element by a per-block
   constant. tid.x-based addressing makes its column arithmetic
   conditionally redundant; the 16x16 threadblock satisfies the paper's
   launch-time x-dimension condition, so DARSIE skips it. *)
let source =
  {|
.kernel scale2d
.params 3
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %tid.x;   // global x
  mad.lo.u32 %r1, %ctaid.y, %ntid.y, %tid.y;   // global y
  mul.lo.u32 %r2, %ntid.x, %nctaid.x;          // row stride (uniform)
  mad.lo.u32 %r3, %r1, %r2, %r0;               // linear index
  shl.b32 %r3, %r3, 2;
  add.u32 %r4, %r3, %param0;
  ld.global.u32 %r5, [%r4+0];
  ld.global.u32 %r6, [%param2+0];              // uniform scale factor
  mul.f32 %r7, %r5, %r6;
  add.u32 %r8, %r3, %param1;
  st.global.u32 [%r8+0], %r7;
  exit;
|}

let () =
  (* 1. Assemble. *)
  let kernel = Parser.parse_kernel source in
  Printf.printf "assembled %s: %d instructions, %d registers\n\n"
    kernel.Kernel.name
    (Array.length kernel.Kernel.insts)
    kernel.Kernel.nregs;

  (* 2. Compiler pass: DR/CR/V markings. *)
  let analysis = Darsie_compiler.Analysis.analyze kernel in
  Format.printf "compiler markings (DR = definitely redundant, CR = \
                 conditionally redundant):@\n%a@\n"
    Darsie_compiler.Analysis.pp_markings analysis;

  (* 3. Set up memory and launch 4x4 blocks of 16x16 threads. *)
  let width = 64 and height = 64 in
  let mem = Darsie_emu.Memory.create () in
  let src = Darsie_emu.Memory.alloc mem (4 * width * height) in
  let dst = Darsie_emu.Memory.alloc mem (4 * width * height) in
  let scale = Darsie_emu.Memory.alloc mem 4 in
  Darsie_emu.Memory.write_f32s mem src
    (Array.init (width * height) (fun i -> float_of_int (i mod 100)));
  Darsie_emu.Memory.write_f32s mem scale [| 2.5 |];
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (width / 16) ~y:(height / 16))
      ~block:(Kernel.dim3 16 ~y:16)
      ~params:[| src; dst; scale |]
  in

  (* 4. Launch-time promotion: the 16x16 TB satisfies the condition. *)
  let promo = Darsie_compiler.Promotion.resolve analysis launch ~warp_size:32 in
  Printf.printf "16x16 threadblock promotes CR to DR: %b\n"
    promo.Darsie_compiler.Promotion.promoted;
  Printf.printf "statically skippable instructions: %d of %d\n\n"
    (Darsie_compiler.Promotion.skip_count_upper_bound promo)
    (Array.length kernel.Kernel.insts);

  (* 5. Functional execution + trace capture. *)
  let trace = Darsie_trace.Record.generate mem launch in
  let out = Darsie_emu.Memory.read_f32s mem dst 4 in
  Printf.printf "functional result: dst[0..3] = %.1f %.1f %.1f %.1f\n\n"
    out.(0) out.(1) out.(2) out.(3);

  (* 6. Timing: baseline vs DARSIE. *)
  let kinfo = Kinfo.of_promotion promo launch in
  let base = Gpu.run_exn Engine.base_factory kinfo trace in
  let darsie = Gpu.run_exn (Darsie_core.Darsie_engine.factory ()) kinfo trace in
  Printf.printf "baseline: %d cycles, %d instructions fetched\n"
    base.Gpu.cycles base.Gpu.stats.Stats.fetched;
  Printf.printf "DARSIE:   %d cycles, %d fetched, %d skipped before fetch\n"
    darsie.Gpu.cycles darsie.Gpu.stats.Stats.fetched
    darsie.Gpu.stats.Stats.skipped_prefetch;
  Printf.printf "speedup: %.2fx\n"
    (float_of_int base.Gpu.cycles /. float_of_int darsie.Gpu.cycles)
