(* The 3D-threadblock extension (paper §2): in three-dimensional
   threadblocks whose xy-plane fits in a warp, tid.y repeats per warp just
   like tid.x does in 2D — so tid.y-derived work is conditionally
   redundant too. The paper observes this but evaluates only tid.x; this
   example runs the extension end to end.

     dune exec examples/extension_3d.exe *)

open Darsie_isa
open Darsie_timing
module B = Builder

(* A 3D field kernel: per cell, accumulate an 8-tap per-(x,y) coefficient
   kernel (all its addresses depend on tid.x and tid.y only — redundant
   across warps when the xy-plane fits in a warp) and scale the cell
   value. *)
let taps = 8

let build () =
  let b = B.create ~name:"field3d" ~nparams:3 () in
  let open B.O in
  (* params: 0=coef (xdim*ydim*taps table) 1=field in/out 2=cells/block *)
  let plane = B.reg b in
  B.mad b plane tid_y ntid_x tid_x;
  let c_base = B.reg b in
  B.mad b c_base (r plane) (i (4 * taps)) (p 0);
  let coef = B.reg b in
  B.mov b coef (f 0.0);
  let cv = B.reg b and wgt = B.reg b in
  for t = 0 to taps - 1 do
    B.ld b Instr.Global cv (r c_base) ~off:(4 * t) ();
    B.un b Instr.Fexp2 wgt (r cv);
    B.fadd b coef (r coef) (r wgt)
  done;
  (* linear cell id: ((z*ny + y)*nx + x) + block offset *)
  let lin = B.reg b in
  B.mad b lin tid_z ntid_y tid_y;
  B.mad b lin (r lin) ntid_x tid_x;
  let cell = B.reg b in
  B.mad b cell ctaid_x (p 2) (r lin);
  let f_addr = B.reg b in
  B.mad b f_addr (r cell) (i 4) (p 1);
  let v = B.reg b in
  B.ld b Instr.Global v (r f_addr) ();
  let out = B.reg b in
  B.fmul b out (r v) (r coef);
  B.st b Instr.Global (r f_addr) (r out);
  B.exit_ b;
  B.finish b

let () =
  let kernel = build () in
  let nx, ny, nz = (4, 8, 8) in
  let blocks = 32 in
  let cells = nx * ny * nz in
  let mem = Darsie_emu.Memory.create () in
  let coef = Darsie_emu.Memory.alloc mem (4 * nx * ny * taps) in
  let field = Darsie_emu.Memory.alloc mem (4 * cells * blocks) in
  Darsie_emu.Memory.write_f32s mem coef
    (Array.init (nx * ny * taps) (fun i -> 0.03125 *. float_of_int (i mod 32)));
  Darsie_emu.Memory.write_f32s mem field
    (Array.init (cells * blocks) (fun i -> float_of_int (i mod 7)));
  let launch =
    Kernel.launch kernel ~grid:(Kernel.dim3 blocks)
      ~block:(Kernel.dim3 nx ~y:ny ~z:nz)
      ~params:[| coef; field; cells |]
  in
  Printf.printf "3D launch: %dx%dx%d threadblocks (xy-plane = %d <= warp)\n\n"
    nx ny nz (nx * ny);

  (* Markings with and without the extension. *)
  List.iter
    (fun tid_y_redundancy ->
      let a =
        Darsie_compiler.Analysis.analyze ~tid_y_redundancy kernel
      in
      let promo =
        Darsie_compiler.Promotion.resolve a launch ~warp_size:32
      in
      Printf.printf "tid.y extension %-3s -> skippable instructions: %d\n"
        (if tid_y_redundancy then "ON" else "off")
        (Darsie_compiler.Promotion.skip_count_upper_bound promo))
    [ false; true ];
  print_newline ();

  (* Timing with and without. *)
  let trace = Darsie_trace.Record.generate mem launch in
  let run ~tid_y =
    let kinfo = Kinfo.make ~tid_y_redundancy:tid_y ~warp_size:32 launch in
    Gpu.run_exn (Darsie_core.Darsie_engine.factory ()) kinfo trace
  in
  let kinfo_base = Kinfo.make ~warp_size:32 launch in
  let base = Gpu.run_exn Engine.base_factory kinfo_base trace in
  let off = run ~tid_y:false and on = run ~tid_y:true in
  let sp r = float_of_int base.Gpu.cycles /. float_of_int r.Gpu.cycles in
  Printf.printf "baseline:              %6d cycles\n" base.Gpu.cycles;
  Printf.printf "DARSIE (paper, tid.x): %6d cycles (%.2fx), %d skipped\n"
    off.Gpu.cycles (sp off) off.Gpu.stats.Stats.skipped_prefetch;
  Printf.printf "DARSIE + tid.y ext.:   %6d cycles (%.2fx), %d skipped\n"
    on.Gpu.cycles (sp on) on.Gpu.stats.Stats.skipped_prefetch;
  (* sanity: results are identical either way *)
  let sample = Darsie_emu.Memory.read_f32s mem field 4 in
  Printf.printf "\nfield[0..3] after execution: %.3f %.3f %.3f %.3f\n"
    sample.(0) sample.(1) sample.(2) sample.(3)
