module W = Darsie_workloads.Workload
module Suite = Darsie_harness.Suite
module Config = Darsie_timing.Config
let () =
  let cache = Darsie_trace.Cache.create () in
  let apps =
    List.filter (fun w -> List.mem w.W.abbr ["BIN";"PT";"LIB"]) Darsie_workloads.Registry.all
    |> List.map (Suite.load_app ~cache) in
  let off = { Config.default with Config.fast_forward = false } in
  List.iter (fun app ->
    List.iter (fun m ->
      let time cfg =
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          ignore (Suite.run_app ~cfg app m);
          best := min !best (Unix.gettimeofday () -. t0)
        done; !best in
      let a = time Config.default and b = time off in
      Printf.printf "%-6s %-20s on=%.4f off=%.4f ratio=%.2f\n%!"
        app.Suite.workload.W.abbr (Suite.machine_name m) a b (b /. a))
      Suite.all_machines) apps
