(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5–6), then runs Bechamel micro-benchmarks of the core
   mechanisms. Absolute numbers come from our scaled-down timing model
   (DESIGN.md §3); the shapes — who wins, by roughly what factor — are the
   reproduced quantity, recorded against the paper in EXPERIMENTS.md. *)

open Darsie_harness
module J = Darsie_obs.Json
module Tel = Darsie_telemetry.Telemetry
module Host_trace = Darsie_telemetry.Host_trace

let section title paper =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "  paper reference: %s\n" paper;
  Printf.printf "================================================================\n"

(* Machine-readable summary of the evaluation: the same rows the rendered
   tables print, under the shared [schema_version] so downstream tooling
   can diff bench runs. *)
let json_summary m =
  let speedup_row (r : Figures.fig8_row) =
    J.Obj
      [
        ("app", J.String r.Figures.abbr);
        ("uv", J.Float r.Figures.uv);
        ("dac_ideal", J.Float r.Figures.dac);
        ("darsie", J.Float r.Figures.darsie);
      ]
  in
  let reduction_row (r : Figures.reduction_row) =
    J.Obj
      [
        ("app", J.String r.Figures.abbr);
        ("machine", J.String r.Figures.machine);
        ("uniform_pct", J.Float r.Figures.uniform_pct);
        ("affine_pct", J.Float r.Figures.affine_pct);
        ("unstructured_pct", J.Float r.Figures.unstructured_pct);
        ("total_pct", J.Float r.Figures.total_pct);
      ]
  in
  let energy_row (r : Figures.fig11_row) =
    J.Obj
      [
        ("app", J.String r.Figures.abbr);
        ("uv_pct", J.Float r.Figures.uv);
        ("dac_ideal_pct", J.Float r.Figures.dac);
        ("darsie_pct", J.Float r.Figures.darsie);
      ]
  in
  let rows8, g1, g2, _ = Figures.fig8 m in
  let rows9, _ = Figures.fig9 m in
  let rows10, _ = Figures.fig10 m in
  let rows11, ge1, ge2, _ = Figures.fig11 m in
  let overhead, _ = Figures.darsie_overhead m in
  J.Obj
    [
      ("schema_version", J.Int Darsie_obs.Export.schema_version);
      ("speedup", J.List (List.map speedup_row rows8));
      ("speedup_gmean_1d", speedup_row g1);
      ("speedup_gmean_2d", speedup_row g2);
      ("instr_reduction_1d", J.List (List.map reduction_row rows9));
      ("instr_reduction_2d", J.List (List.map reduction_row rows10));
      ("energy_reduction", J.List (List.map energy_row rows11));
      ("energy_gmean_1d", energy_row ge1);
      ("energy_gmean_2d", energy_row ge2);
      ("darsie_energy_overhead_pct", J.Float overhead);
    ]

let run_figures m =
  section "Table 1 - Applications studied" "13 apps, 5x 1D TBs + 8x 2D TBs";
  print_string (Figures.table1 ());
  section "Table 2 - Baseline GPU"
    "GTX 1080 Ti-style SMs (we model 4 SMs; per-SM parameters per paper)";
  print_string (Figures.table2 ());
  section "Figure 1 - Redundant instructions per thread-grouping level"
    "TB-wide redundancy dominates: ~33% of executed instructions on average";
  let _, avg, text = Figures.fig1 () in
  print_string text;
  Printf.printf
    "AVG TB-wide redundancy: %.1f%% (paper: ~33%%); grid %.1f%%, warp %.1f%%\n"
    avg.Figures.tb_pct avg.Figures.grid_pct avg.Figures.warp_pct;
  section "Figure 2 - TB-redundancy taxonomy (dynamic)"
    "affine+unstructured pervasive in 2D TBs, largely absent in 1D";
  let _, text = Figures.fig2 () in
  print_string text;
  section "Figure 6 - Compiler markings for the MM kernel"
    "DR/CR/V markings on register-allocated code";
  print_string (Figures.fig6 ());
  section "Figure 8 - Speedup over baseline"
    "GMEAN-2D: DARSIE 1.3, DAC-IDEAL 1.11, UV 1.02; DARSIE ~= DAC on 1D";
  let _, g1, g2, text = Figures.fig8 m in
  print_string text;
  Printf.printf
    "GMEAN-2D: UV %.2f (paper 1.02)  DAC %.2f (paper 1.11)  DARSIE %.2f (paper 1.30)\n"
    g2.Figures.uv g2.Figures.dac g2.Figures.darsie;
  Printf.printf "GMEAN-1D: DAC %.2f ~ DARSIE %.2f (paper: roughly equal)\n"
    g1.Figures.dac g1.Figures.darsie;
  section "Figure 9 - Instruction reduction, 1D benchmarks"
    "GMEAN: DARSIE ~19%, LIB ~75%; mostly uniform redundancy";
  let rows9, text = Figures.fig9 m in
  print_string text;
  ignore rows9;
  section "Figure 10 - Instruction reduction, 2D benchmarks"
    "GMEAN: DARSIE 17%, DAC-IDEAL 11%; only DARSIE removes unstructured";
  let rows10, text = Figures.fig10 m in
  print_string text;
  ignore rows10;
  section "Figure 11 - Energy reduction"
    "GMEAN: DARSIE 25%, DAC-IDEAL 20%, UV 7%";
  let _, ge1, ge2, text = Figures.fig11 m in
  print_string text;
  Printf.printf "GMEAN-2D energy reduction: UV %.1f%%  DAC %.1f%%  DARSIE %.1f%%\n"
    ge2.Figures.uv ge2.Figures.dac ge2.Figures.darsie;
  ignore ge1;
  let ov, ov_text = Figures.darsie_overhead m in
  print_string ov_text;
  Printf.printf "(paper: 0.95%% dynamic-energy overhead)\n";
  ignore ov;
  section "Figure 12 - Effect of synchronization"
    "DARSIE 1.3 vs NO-CF-SYNC 1.39; SILICON-SYNC overhead small except LIB (-50%)";
  let _, g12, text = Figures.fig12 m in
  print_string text;
  Printf.printf "GMEAN: DARSIE %.2f, NO-CF-SYNC %.2f, SILICON-SYNC %.2f\n"
    g12.Figures.darsie g12.Figures.darsie_no_cf_sync g12.Figures.silicon_sync;
  section "Table 3 - Comparison with related work" "capability matrix";
  print_string (Figures.table3 ());
  section "Section 6.3 - Area estimation"
    "82-bit skip entries; 5.31 kB total; 2.1% of the register file";
  let _, text = Figures.area () in
  print_string text

let run_ablations () =
  section "Ablations - DARSIE design-space sweeps"
    "the paper sizes the PC coalescer experimentally (2 ports) and fixes \
     8 skip entries + 32 rename regs per TB";
  List.iter
    (fun sweep -> print_endline (Ablations.render sweep))
    (Ablations.run_default ());
  section "Ablation - warp scheduler sensitivity"
    "the paper swept schedulers and found these regular apps insensitive, \
     GTO best";
  let apps =
    List.map Suite.load_app
      [ Darsie_workloads.Matmul.workload; Darsie_workloads.Libor.workload;
        Darsie_workloads.Hotspot.workload ]
  in
  print_string (Ablations.render_schedulers (Ablations.scheduler_comparison apps));
  section "Analysis - mechanism efficiency vs the TB-IDEAL bound"
    "how much of the idealized elimination DARSIE's real hardware \
     captures; on memory-bound stencils the ideal can even lose because \
     the removed ALU work was hiding DRAM latency";
  print_string (Ablations.render_efficiency (Ablations.mechanism_efficiency apps))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core mechanisms                    *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let mm = Darsie_workloads.Matmul.workload in
  let small =
    Darsie_isa.Parser.parse_kernel
      {|
.kernel micro
.params 1
  mov.u32 %r0, %tid.x;
  mul.lo.u32 %r1, %r0, 4;
  add.u32 %r2, %r1, %param0;
  ld.global.u32 %r3, [%r2+0];
  add.u32 %r3, %r3, 1;
  st.global.u32 [%r2+0], %r3;
  exit;
|}
  in
  let emulate () =
    let mem = Darsie_emu.Memory.create () in
    let base = Darsie_emu.Memory.alloc mem 4096 in
    let launch =
      Darsie_isa.Kernel.launch small ~grid:(Darsie_isa.Kernel.dim3 4)
        ~block:(Darsie_isa.Kernel.dim3 16 ~y:16)
        ~params:[| base |]
    in
    ignore (Darsie_emu.Interp.run mem launch)
  in
  let analyze_mm =
    let p = mm.Darsie_workloads.Workload.prepare ~scale:1 in
    let k = p.Darsie_workloads.Workload.launch.Darsie_isa.Kernel.kernel in
    fun () -> ignore (Darsie_compiler.Analysis.analyze k)
  in
  let skip_table () =
    let t = Darsie_core.Skip_table.create ~max_entries:8 ~rename_regs:32 in
    for pc = 0 to 7 do
      Darsie_core.Skip_table.allocate t ~pc ~occ:0 ~leader:0 ~mem_dep:false;
      Darsie_core.Skip_table.mark_writeback t ~pc ~occ:0 ~majority:0xFF;
      for w = 1 to 7 do
        Darsie_core.Skip_table.mark_passed t ~pc ~occ:0 ~warp:w ~majority:0xFF
      done
    done
  in
  let timing_darsie =
    let app = Suite.load_app Darsie_workloads.Dct8x8.workload in
    fun () ->
      ignore
        (Darsie_timing.Gpu.run_exn
           (Darsie_core.Darsie_engine.factory ())
           app.Suite.kinfo app.Suite.trace)
  in
  Test.make_grouped ~name:"darsie"
    [
      Test.make ~name:"emulator: 1K-thread kernel" (Staged.stage emulate);
      Test.make ~name:"compiler: analyze MM" (Staged.stage analyze_mm);
      Test.make ~name:"skip-table: fill/drain 8 PCs" (Staged.stage skip_table);
      Test.make ~name:"timing: DARSIE on DCT8x8" (Staged.stage timing_darsie);
    ]

let run_micro () =
  let open Bechamel in
  print_newline ();
  print_endline "Bechamel micro-benchmarks (time per run):";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-32s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    results

let flag_value name =
  let rec scan = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let json_path () = flag_value "--json"

(* --trend FILE appends tonight's point to the bench trajectory: the
   matrix build is re-run --trend-repeats times (min-of-N wall time) and
   summarized into one Trendline record for bench-compare to gate on. *)
let trend_path () = flag_value "--trend"

let trend_repeats () =
  match Option.bind (flag_value "--trend-repeats") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1

(* --telemetry FILE captures host spans/counters for the whole bench run
   and writes the validated host_telemetry document there; --progress /
   --progress-json stream pool heartbeats to stderr. Spans are also
   enabled implicitly under --trend so the trajectory record can carry
   per-phase host wall times. *)
let telemetry_path () = flag_value "--telemetry"

let iso_date () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let has_flag name = Array.exists (( = ) name) Sys.argv

(* -j/--jobs N fans the (app x machine) matrix out over N domains
   (default: all available cores; -j 1 reproduces the serial build
   bit-for-bit). --no-cache disables the persistent functional-trace
   cache; --cache-dir D relocates it (default _cache/). *)
let jobs () =
  let explicit =
    match Option.bind (flag_value "--jobs") int_of_string_opt with
    | Some n -> Some n
    | None -> Option.bind (flag_value "-j") int_of_string_opt
  in
  match explicit with
  | Some n when n >= 1 -> n
  | Some _ -> 1
  | None -> Darsie_harness.Parallel.default_jobs ()

let cache () =
  if has_flag "--no-cache" then None
  else
    let dir =
      Option.value (flag_value "--cache-dir")
        ~default:Darsie_trace.Cache.default_dir
    in
    Some (Darsie_trace.Cache.create ~dir ())

let () =
  let repeats = if trend_path () = None then 1 else trend_repeats () in
  let jobs = jobs () in
  let cache = cache () in
  if has_flag "--progress-json" then Tel.Progress.configure Tel.Progress.Ndjson
  else if has_flag "--progress" then Tel.Progress.configure Tel.Progress.Human;
  if telemetry_path () <> None || trend_path () <> None then Tel.enable ();
  (* --no-fast-forward steps every cycle instead of jumping over idle
     spans; deterministic metrics are bit-identical either way, only the
     wall clock moves. *)
  let cfg =
    if has_flag "--no-fast-forward" then
      {
        Darsie_timing.Config.default with
        Darsie_timing.Config.fast_forward = false;
      }
    else Darsie_timing.Config.default
  in
  Printf.printf
    "\nBuilding the evaluation matrix (13 apps x 7 machines%s, %d job(s), \
     trace cache %s%s)...\n%!"
    (if repeats > 1 then Printf.sprintf ", best of %d builds" repeats else "")
    jobs
    (match cache with
    | Some c -> Darsie_trace.Cache.dir c
    | None -> "off")
    (if cfg.Darsie_timing.Config.fast_forward then ""
     else ", fast-forward off");
  let m, wall_s =
    Trendline.measure ~clock:Unix.gettimeofday ~repeats (fun () ->
        Suite.build_matrix ~cfg ~jobs ?cache ())
  in
  (match cache with
  | Some c -> Printf.printf "%s\n" (Darsie_trace.Cache.summary c)
  | None -> ());
  run_figures m;
  run_ablations ();
  (try run_micro ()
   with e ->
     Printf.printf "micro-benchmarks skipped: %s\n" (Printexc.to_string e));
  (match json_path () with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (J.pretty_to_string (json_summary m));
        output_char oc '\n');
    Printf.printf "bench summary: %s\n" path);
  (match trend_path () with
  | None -> ()
  | Some path ->
    let label =
      match Sys.getenv_opt "DARSIE_BENCH_LABEL" with
      | Some l -> l
      | None -> "local"
    in
    let snap = Tel.snapshot () in
    let host_phases =
      List.map
        (fun (name, (_count, _total_ns, self_ns)) ->
          (name, float_of_int self_ns /. 1e9))
        (Tel.phases snap)
    in
    let counter name =
      match List.assoc_opt name snap.Tel.sn_counters with
      | Some v -> v
      | None -> 0
    in
    let cache_hit_rate =
      let hits = counter "trace_cache.hits"
      and misses = counter "trace_cache.misses" in
      if hits + misses = 0 then None
      else Some (float_of_int hits /. float_of_int (hits + misses))
    in
    let record =
      Trendline.of_matrix ~host_phases ?cache_hit_rate ~date:(iso_date ())
        ~label ~wall_s ~repeats m
    in
    Trendline.write_file path record;
    Printf.printf "bench trajectory record: %s (%.2fs wall, min of %d)\n" path
      wall_s repeats);
  (match telemetry_path () with
  | None -> ()
  | Some path ->
    let doc = Host_trace.document (Tel.snapshot ()) in
    (match Metrics.validate_telemetry doc with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "bench: telemetry document invalid (%s)\n" msg;
      exit 2);
    Metrics.write_file path doc;
    Printf.printf "telemetry: %s\n" path);
  print_endline "\nbench: done."
