(* Wall-time comparison of the timing model with fast-forward on vs off
   over the memory-bound application subset (BIN, PT, LIB — the apps
   whose runs are dominated by DRAM-latency idle spans). Traces come
   from the persistent cache and every run is serial, so the two
   configurations differ only in the cycle loop. This is the
   measurement behind the fast-forward gating baseline; see
   docs/ARCHITECTURE.md ("Event-driven fast-forwarding"). *)

module W = Darsie_workloads.Workload
module Suite = Darsie_harness.Suite
module Config = Darsie_timing.Config

let subset = [ "BIN"; "PT"; "LIB" ]

let repeats = 3

let time_matrix ~cfg apps =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun app ->
        List.iter
          (fun m -> ignore (Suite.run_app ~cfg app m))
          Suite.all_machines)
      apps;
    best := min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let () =
  let cache = Darsie_trace.Cache.create () in
  let apps =
    List.filter
      (fun w -> List.mem w.W.abbr subset)
      Darsie_workloads.Registry.all
    |> List.map (Suite.load_app ~cache)
  in
  let off = { Config.default with Config.fast_forward = false } in
  Printf.printf
    "memory-bound subset (%s), 7 machines each, serial, cache-warm, best \
     of %d:\n"
    (String.concat " " subset) repeats;
  let on_s = time_matrix ~cfg:Config.default apps in
  let off_s = time_matrix ~cfg:off apps in
  Printf.printf "  fast-forward on : %.3f s\n" on_s;
  Printf.printf "  fast-forward off: %.3f s\n" off_s;
  Printf.printf "  speedup         : %.2fx\n" (off_s /. on_s)
