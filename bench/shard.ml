(* Wall-time scaling of ONE simulation sharded across OCaml domains
   (--sm-domains): the paper-scale MM grid (scale 8: a 512x512 matmul,
   256 thread blocks) on the DARSIE machine at 1, 2 and 4 domains.
   Sharding is timing-invisible, so every configuration must report the
   exact same simulated cycle count — only the wall clock moves. This
   is the measurement behind the sharding gating baseline; see
   ARCHITECTURE.md ("Sharded cycle loop"). *)

module W = Darsie_workloads.Workload
module Suite = Darsie_harness.Suite
module Config = Darsie_timing.Config
module Gpu = Darsie_timing.Gpu

let getenv_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> default

(* scale 4 is a 256x256 matmul: 64 thread blocks, 16x the scale-1 grid —
   enough work per epoch that barrier overhead is amortized, while one
   serial run still completes in seconds on a laptop core. *)
let scale = getenv_int "SHARD_BENCH_SCALE" 4

let repeats = getenv_int "SHARD_BENCH_REPEATS" 3

let machine = Suite.Darsie

let time_run ~cfg app =
  let best = ref infinity and cycles = ref 0 in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = Suite.run_app ~cfg app machine in
    best := min !best (Unix.gettimeofday () -. t0);
    cycles := r.Suite.gpu.Gpu.cycles
  done;
  (!best, !cycles)

let () =
  let cache = Darsie_trace.Cache.create () in
  let app = Suite.load_app ~scale ~cache Darsie_workloads.Matmul.workload in
  let ntbs =
    Darsie_isa.Kernel.dim3_count
      app.Suite.kinfo.Darsie_timing.Kinfo.launch.Darsie_isa.Kernel.grid_dim
  in
  Printf.printf
    "MM scale %d (%d thread blocks), %s machine, one simulation, %d host \
     core(s), best of %d:\n"
    scale ntbs
    (Suite.machine_name machine)
    (Darsie_harness.Parallel.default_jobs ())
    repeats;
  let serial_s, serial_cy = time_run ~cfg:Config.default app in
  Printf.printf "  sm-domains 1: %.3f s  (%d cycles, %.0f cycles/s)\n" serial_s
    serial_cy
    (float_of_int serial_cy /. serial_s);
  List.iter
    (fun d ->
      let cfg = { Config.default with Config.sm_domains = d } in
      let s, cy = time_run ~cfg app in
      if cy <> serial_cy then begin
        Printf.eprintf
          "FAIL: %d domains simulated %d cycles, serial simulated %d\n" d cy
          serial_cy;
        exit 1
      end;
      Printf.printf
        "  sm-domains %d: %.3f s  (%d cycles, %.0f cycles/s)  speedup %.2fx\n"
        d s cy
        (float_of_int cy /. s)
        (serial_s /. s))
    [ 2; 4 ]
